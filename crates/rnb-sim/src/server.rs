//! A simulated memcached server: a pinned set of distinguished copies
//! plus an LRU replica cache.

use crate::lru::ItemLru;
use rnb_hash::ItemId;
use std::collections::HashSet;

/// Per-server access counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Lookups that hit (pinned or replica).
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Replica insertions.
    pub inserts: u64,
    /// Replica evictions caused by inserts.
    pub evictions: u64,
}

/// One simulated storage server.
#[derive(Debug)]
pub struct SimServer {
    /// Distinguished copies homed here — guaranteed resident (§III-D
    /// gives them dedicated memory equal to the unreplicated system's).
    pinned: HashSet<ItemId>,
    /// Adaptive replica cache (overbooking's enforcement point).
    replicas: ItemLru,
    stats: ServerStats,
}

impl SimServer {
    /// A server with `replica_capacity` item slots for replicas.
    pub fn new(replica_capacity: usize) -> Self {
        SimServer {
            pinned: HashSet::new(),
            replicas: ItemLru::new(replica_capacity),
            stats: ServerStats::default(),
        }
    }

    /// Pin `item`'s distinguished copy here.
    pub fn pin(&mut self, item: ItemId) {
        self.pinned.insert(item);
    }

    /// True if `item`'s distinguished copy lives here.
    pub fn is_pinned(&self, item: ItemId) -> bool {
        self.pinned.contains(&item)
    }

    /// Serve a *planned* access: hit on pinned or replica (replica hits
    /// refresh the LRU).
    pub fn access(&mut self, item: ItemId) -> bool {
        if self.pinned.contains(&item) {
            self.stats.hits += 1;
            return true;
        }
        if self.replicas.touch(item) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Serve a *hitchhiker* probe: per §III-C2 we "updated the LRU only
    /// upon a hit in the hitchhiking request" — identical observable
    /// behaviour to [`SimServer::access`], but a miss is free (no
    /// second-round obligation arises from it), so the caller accounts it
    /// differently and we do not count it as a server miss.
    pub fn probe_hitchhiker(&mut self, item: ItemId) -> bool {
        if self.pinned.contains(&item) {
            self.stats.hits += 1;
            return true;
        }
        if self.replicas.touch(item) {
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Write a replica of `item` into the cache (miss write-back or
    /// initial fill). Pinned items are not duplicated into the replica
    /// cache. Returns the evicted item, if any.
    pub fn insert_replica(&mut self, item: ItemId) -> Option<ItemId> {
        if self.pinned.contains(&item) {
            return None;
        }
        self.stats.inserts += 1;
        let evicted = self.replicas.insert(item);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Serve a probe without any recency side effect (the
    /// [`crate::config::HitchhikerLru::Never`] policy).
    pub fn peek(&mut self, item: ItemId) -> bool {
        if self.pinned.contains(&item) || self.replicas.contains(item) {
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Drop a replica (write invalidation, §IV's atomic scheme). Pinned
    /// distinguished copies are never droppable. Returns whether a
    /// replica was present.
    pub fn remove_replica(&mut self, item: ItemId) -> bool {
        self.replicas.remove(item)
    }

    /// Presence check without recency side effects (for tests/invariants).
    pub fn holds(&self, item: ItemId) -> bool {
        self.pinned.contains(&item) || self.replicas.contains(item)
    }

    /// Resident replica count (excludes pinned items).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Pinned item count.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }

    /// Replica cache capacity.
    pub fn replica_capacity(&self) -> usize {
        self.replicas.capacity()
    }

    /// Access counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_items_always_hit() {
        let mut s = SimServer::new(0);
        s.pin(7);
        assert!(s.access(7));
        assert!(s.access(7));
        assert_eq!(s.stats().hits, 2);
        assert_eq!(s.stats().misses, 0);
    }

    #[test]
    fn replica_lifecycle() {
        let mut s = SimServer::new(2);
        assert!(!s.access(1));
        assert_eq!(s.stats().misses, 1);
        s.insert_replica(1);
        assert!(s.access(1));
        s.insert_replica(2);
        s.insert_replica(3); // evicts LRU: 1 (2 is more recent than 1's hit)
        assert_eq!(s.stats().evictions, 1);
        assert!(!s.holds(1));
        assert!(s.holds(2));
        assert!(s.holds(3));
    }

    #[test]
    fn pinned_not_duplicated_as_replica() {
        let mut s = SimServer::new(4);
        s.pin(5);
        assert_eq!(s.insert_replica(5), None);
        assert_eq!(s.replica_count(), 0);
        assert_eq!(s.pinned_count(), 1);
        assert!(s.holds(5));
    }

    #[test]
    fn hitchhiker_miss_not_counted() {
        let mut s = SimServer::new(2);
        assert!(!s.probe_hitchhiker(9));
        assert_eq!(s.stats().misses, 0, "hitchhiker misses are free");
        s.insert_replica(9);
        assert!(s.probe_hitchhiker(9));
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut s = SimServer::new(2);
        s.insert_replica(1);
        s.insert_replica(2);
        assert!(s.peek(1)); // would promote under probe_hitchhiker
        assert!(!s.peek(9));
        s.insert_replica(3); // evicts 1 (still LRU)
        assert!(!s.holds(1));
        assert!(s.holds(2) && s.holds(3));
    }

    #[test]
    fn hitchhiker_hit_refreshes_lru() {
        let mut s = SimServer::new(2);
        s.insert_replica(1);
        s.insert_replica(2);
        assert!(s.probe_hitchhiker(1)); // promotes 1
        s.insert_replica(3); // evicts 2, not 1
        assert!(s.holds(1));
        assert!(!s.holds(2));
    }

    #[test]
    fn zero_capacity_server_never_caches() {
        let mut s = SimServer::new(0);
        s.insert_replica(1);
        assert!(!s.holds(1));
        assert_eq!(s.replica_capacity(), 0);
    }
}
