//! Experiment metrics: the paper's TPR / TPRPS plus the transaction-size
//! histogram the calibration layer consumes (Appendix).

/// Accumulated counters over a measurement run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Requests executed.
    pub requests: u64,
    /// Round-1 (planned) transactions.
    pub round1_txns: u64,
    /// Round-2 transactions (bundled distinguished-copy fetches after
    /// misses, §III-D).
    pub round2_txns: u64,
    /// Items assigned by plans (planned fetches, before misses).
    pub planned_items: u64,
    /// Planned fetches that missed (replica evicted).
    pub planned_misses: u64,
    /// Hitchhiker items appended to round-1 transactions.
    pub hitchhiker_probes: u64,
    /// Hitchhiker probes that hit.
    pub hitchhiker_hits: u64,
    /// Planned misses rescued by a hitchhiker hit elsewhere (no round-2
    /// fetch needed).
    pub misses_rescued_by_hitchhikers: u64,
    /// Replica write-backs performed after misses.
    pub writebacks: u64,
    /// Write operations executed.
    pub writes: u64,
    /// Transactions spent on writes (`set`s to replicas and invalidation
    /// `delete`s, §III-G / §IV).
    pub write_txns: u64,
    /// Invalidation `delete`s issued (InvalidateThenWrite policy only).
    pub invalidations: u64,
    /// Database fetches caused by distinguished-copy misses — only
    /// possible under `DistinguishedMode::InLru` (no second service
    /// class); always 0 with pinning, which is §III-D's guarantee.
    pub db_fetches: u64,
    /// `txn_size_hist[s]` = number of transactions that returned exactly
    /// `s` items (both rounds; hitchhiker hits count, since the server
    /// does per-item work only for items it actually returns).
    pub txn_size_hist: Vec<u64>,
}

impl Metrics {
    /// Record a transaction that returned `items` items.
    pub fn record_txn_size(&mut self, items: usize) {
        if items >= self.txn_size_hist.len() {
            self.txn_size_hist.resize(items + 1, 0);
        }
        self.txn_size_hist[items] += 1;
    }

    /// Total read transactions (both rounds).
    pub fn total_txns(&self) -> u64 {
        self.round1_txns + self.round2_txns
    }

    /// All server transactions including the write path.
    pub fn total_txns_with_writes(&self) -> u64 {
        self.total_txns() + self.write_txns
    }

    /// Mean server transactions per operation (reads + writes) — the
    /// §III-G metric that exposes when a workload is not read-mostly
    /// enough for RnB.
    pub fn txns_per_op(&self) -> f64 {
        let ops = self.requests + self.writes;
        if ops == 0 {
            0.0
        } else {
            self.total_txns_with_writes() as f64 / ops as f64
        }
    }

    /// Transactions Per Request — the paper's headline metric.
    pub fn tpr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_txns() as f64 / self.requests as f64
        }
    }

    /// Transactions Per Request Per Server.
    pub fn tprps(&self, servers: usize) -> f64 {
        self.tpr() / servers as f64
    }

    /// Miss rate among planned fetches.
    pub fn miss_rate(&self) -> f64 {
        if self.planned_items == 0 {
            0.0
        } else {
            self.planned_misses as f64 / self.planned_items as f64
        }
    }

    /// Mean items returned per transaction.
    pub fn mean_txn_size(&self) -> f64 {
        let txns: u64 = self.txn_size_hist.iter().sum();
        if txns == 0 {
            return 0.0;
        }
        let items: u64 = self
            .txn_size_hist
            .iter()
            .enumerate()
            .map(|(s, &c)| s as u64 * c)
            .sum();
        items as f64 / txns as f64
    }

    /// Fold another metrics block into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.requests += other.requests;
        self.round1_txns += other.round1_txns;
        self.round2_txns += other.round2_txns;
        self.planned_items += other.planned_items;
        self.planned_misses += other.planned_misses;
        self.hitchhiker_probes += other.hitchhiker_probes;
        self.hitchhiker_hits += other.hitchhiker_hits;
        self.misses_rescued_by_hitchhikers += other.misses_rescued_by_hitchhikers;
        self.writebacks += other.writebacks;
        self.writes += other.writes;
        self.write_txns += other.write_txns;
        self.invalidations += other.invalidations;
        self.db_fetches += other.db_fetches;
        if other.txn_size_hist.len() > self.txn_size_hist.len() {
            self.txn_size_hist.resize(other.txn_size_hist.len(), 0);
        }
        for (s, &c) in other.txn_size_hist.iter().enumerate() {
            self.txn_size_hist[s] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpr_and_tprps() {
        let m = Metrics {
            requests: 10,
            round1_txns: 40,
            round2_txns: 10,
            ..Default::default()
        };
        assert!((m.tpr() - 5.0).abs() < 1e-12);
        assert!((m.tprps(10) - 0.5).abs() < 1e-12);
        assert_eq!(m.total_txns(), 50);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.tpr(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.mean_txn_size(), 0.0);
    }

    #[test]
    fn histogram_and_mean_size() {
        let mut m = Metrics::default();
        m.record_txn_size(3);
        m.record_txn_size(3);
        m.record_txn_size(1);
        m.record_txn_size(0);
        assert_eq!(m.txn_size_hist, vec![1, 1, 0, 2]);
        assert!((m.mean_txn_size() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn txns_per_op_mixes_reads_and_writes() {
        let m = Metrics {
            requests: 8,
            round1_txns: 16,
            writes: 2,
            write_txns: 8,
            invalidations: 6,
            ..Default::default()
        };
        assert_eq!(m.total_txns_with_writes(), 24);
        assert!((m.txns_per_op() - 2.4).abs() < 1e-12);
        assert_eq!(Metrics::default().txns_per_op(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            requests: 1,
            round1_txns: 2,
            planned_items: 5,
            txn_size_hist: vec![0, 1],
            ..Default::default()
        };
        let b = Metrics {
            requests: 2,
            round2_txns: 3,
            planned_misses: 1,
            txn_size_hist: vec![0, 0, 4],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.total_txns(), 5);
        assert_eq!(a.planned_misses, 1);
        assert_eq!(a.txn_size_hist, vec![0, 1, 4]);
        assert!((a.miss_rate() - 0.2).abs() < 1e-12);
    }
}
