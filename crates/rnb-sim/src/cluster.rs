//! The simulated cluster: plan execution with misses, hitchhiking and the
//! second round of distinguished-copy fetches.

use crate::config::{DistinguishedMode, HitchhikerLru, MemoryModel, SimConfig, WritebackPolicy};
use crate::metrics::Metrics;
use crate::server::SimServer;
use rnb_core::{Bundler, FetchPlan, PlacementStrategy, PlanScratch, WritePolicy};
use rnb_hash::{ItemId, Placement, ServerId};
use std::collections::HashMap;

/// Per-request execution summary (the per-request slice of [`Metrics`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Planned (round-1) transactions.
    pub round1_txns: usize,
    /// Second-round transactions to distinguished copies.
    pub round2_txns: usize,
    /// Planned fetches that missed.
    pub planned_misses: usize,
    /// Misses rescued by a hitchhiker hit (no round-2 fetch needed).
    pub rescued: usize,
    /// Items actually delivered to the user.
    pub items_delivered: usize,
}

impl RequestOutcome {
    /// Total transactions this request cost.
    pub fn total_txns(&self) -> usize {
        self.round1_txns + self.round2_txns
    }
}

/// A simulated RnB deployment: servers + client-side bundler.
///
/// ```
/// use rnb_sim::{SimCluster, SimConfig};
/// // 16 servers, 4 replicas, unlimited memory (Fig 6's setting).
/// let mut cluster = SimCluster::new(SimConfig::basic(16, 4), 10_000);
/// let outcome = cluster.execute(&(0..30).collect::<Vec<_>>());
/// assert_eq!(outcome.items_delivered, 30);
/// assert!(outcome.total_txns() < 14, "bundling beats the ~13.7 urn-model TPR");
/// ```
pub struct SimCluster {
    servers: Vec<SimServer>,
    bundler: Bundler<PlacementStrategy>,
    /// Pooled planner state, reused for every request this cluster
    /// executes (warm-up and measurement alike): after the first request
    /// of a given shape, planning is allocation-free.
    scratch: PlanScratch,
    /// Pooled plan output paired with `scratch` (taken/restored around
    /// each request so its transaction buffers are recycled too).
    plan_buf: FetchPlan,
    config: SimConfig,
    universe: usize,
    metrics: Metrics,
    /// Transactions served per server (both rounds) — load-balance
    /// accounting. TPRPS assumes even spread; this lets tests and
    /// ablations verify the greedy cover does not concentrate load.
    server_txns: Vec<u64>,
}

impl SimCluster {
    /// Build a cluster storing items `0..universe`.
    ///
    /// Distinguished copies (replica 0 of every item) are pinned to their
    /// servers — §III-D guarantees them dedicated memory so "the
    /// distinguished copies of the items will never suffer a miss". Under
    /// [`MemoryModel::Unlimited`] all further replicas are pre-inserted;
    /// under [`MemoryModel::Factor`] replica caches start cold and fill
    /// adaptively through miss write-back (use a warm-up phase before
    /// measuring — see [`crate::runner`]).
    pub fn new(config: SimConfig, universe: usize) -> Self {
        let client = config.client_config();
        let bundler = Bundler::from_config(&client);
        let capacity = match config.distinguished {
            DistinguishedMode::Pinned => config
                .memory
                .replica_capacity_per_server(universe, config.servers),
            DistinguishedMode::InLru => config
                .memory
                .total_capacity_per_server(universe, config.servers),
        };
        let mut servers: Vec<SimServer> = (0..config.servers)
            .map(|_| SimServer::new(capacity))
            .collect();

        let placement = bundler.placement();
        let mut replicas = Vec::with_capacity(config.logical_replication);
        for item in 0..universe as ItemId {
            placement.replicas_into(item, &mut replicas);
            match config.distinguished {
                DistinguishedMode::Pinned => servers[replicas[0] as usize].pin(item),
                DistinguishedMode::InLru => {
                    servers[replicas[0] as usize].insert_replica(item);
                }
            }
            if matches!(config.memory, MemoryModel::Unlimited) {
                for &s in &replicas[1..] {
                    servers[s as usize].insert_replica(item);
                }
            }
        }

        let server_txns = vec![0u64; config.servers];
        SimCluster {
            servers,
            bundler,
            scratch: PlanScratch::new(),
            plan_buf: FetchPlan::default(),
            config,
            universe,
            metrics: Metrics::default(),
            server_txns,
        }
    }

    /// Number of items stored.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The simulation config.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Zero the accumulated metrics (end of warm-up).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
        self.server_txns = vec![0; self.config.servers];
    }

    /// Transactions served per server since the last reset.
    pub fn server_txn_counts(&self) -> &[u64] {
        &self.server_txns
    }

    /// Load imbalance factor: max per-server transactions over the mean
    /// (1.0 = perfectly even).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.server_txns.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.server_txns.iter().sum::<u64>() as f64 / self.server_txns.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Immutable access to a server (tests / invariants).
    pub fn server(&self, id: ServerId) -> &SimServer {
        &self.servers[id as usize]
    }

    /// Execute a full request.
    pub fn execute(&mut self, request: &[ItemId]) -> RequestOutcome {
        self.execute_with_limit(request, None)
    }

    /// Execute a LIMIT request: at least `min_items` of `request`
    /// (§III-F). `None` means fetch everything.
    pub fn execute_with_limit(
        &mut self,
        request: &[ItemId],
        min_items: Option<usize>,
    ) -> RequestOutcome {
        // Pooled planning: take the recycled plan buffer, fill it through
        // the cluster's PlanScratch (zero steady-state allocations), and
        // restore it before returning so the next request reuses it.
        let mut plan = std::mem::take(&mut self.plan_buf);
        match min_items {
            None => self
                .bundler
                .plan_into(&mut self.scratch, request, &mut plan),
            Some(k) => self
                .bundler
                .plan_limit_into(&mut self.scratch, request, k, &mut plan),
        }
        let placement = self.bundler.placement();

        // Transaction index by server, for hitchhiker routing.
        let txn_of_server: HashMap<ServerId, usize> = plan
            .transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.server, i))
            .collect();

        // Hitchhikers per transaction: planned items of *other*
        // transactions that also have a replica on this server (§III-C2).
        let mut hitchhikers: Vec<Vec<ItemId>> = vec![Vec::new(); plan.transactions.len()];
        if self.config.hitchhiking {
            let mut reps = Vec::with_capacity(self.config.logical_replication);
            for (ti, txn) in plan.transactions.iter().enumerate() {
                for &item in &txn.items {
                    placement.replicas_into(item, &mut reps);
                    for &s in &reps {
                        if let Some(&tj) = txn_of_server.get(&s) {
                            if tj != ti {
                                hitchhikers[tj].push(item);
                            }
                        }
                    }
                }
            }
        }

        // Round 1: execute each planned transaction.
        let mut outcome = RequestOutcome {
            round1_txns: plan.tpr(),
            ..Default::default()
        };
        let mut satisfied: HashMap<ItemId, bool> = HashMap::with_capacity(plan.planned_items());
        let mut misses: Vec<(ItemId, ServerId)> = Vec::new();
        for (ti, txn) in plan.transactions.iter().enumerate() {
            self.server_txns[txn.server as usize] += 1;
            let server = &mut self.servers[txn.server as usize];
            let mut returned = 0usize;
            for &item in &txn.items {
                self.metrics.planned_items += 1;
                if server.access(item) {
                    returned += 1;
                    *satisfied.entry(item).or_insert(true) |= true;
                } else {
                    self.metrics.planned_misses += 1;
                    outcome.planned_misses += 1;
                    satisfied.entry(item).or_insert(false);
                    misses.push((item, txn.server));
                }
            }
            for &item in &hitchhikers[ti] {
                self.metrics.hitchhiker_probes += 1;
                let hit = match self.config.hitchhiker_lru {
                    HitchhikerLru::OnHit => server.probe_hitchhiker(item),
                    HitchhikerLru::Never => server.peek(item),
                };
                if hit {
                    self.metrics.hitchhiker_hits += 1;
                    returned += 1;
                    satisfied.insert(item, true);
                }
            }
            self.metrics
                .record_txn_size(txn.items.len() + hitchhikers[ti].len());
            let _ = returned;
        }

        // Round 2: unsatisfied items, bundled by distinguished server
        // (§III-D: "we performed a second round of access to fetch the
        // items that were not found, if we did not yet fetch their
        // distinguished copy"; distinguished copies are pinned, so the
        // second round always succeeds).
        let mut second_round: HashMap<ServerId, Vec<ItemId>> = HashMap::new();
        for (&item, &ok) in &satisfied {
            if !ok {
                second_round
                    .entry(placement.distinguished(item))
                    .or_default()
                    .push(item);
            }
        }
        outcome.rescued =
            outcome.planned_misses - second_round.values().map(Vec::len).sum::<usize>();
        self.metrics.misses_rescued_by_hitchhikers += outcome.rescued as u64;
        // Deterministic iteration order for reproducibility.
        let mut second_round: Vec<(ServerId, Vec<ItemId>)> = second_round.into_iter().collect();
        second_round.sort_unstable_by_key(|(s, _)| *s);
        for (server, items) in &second_round {
            self.server_txns[*server as usize] += 1;
            let srv = &mut self.servers[*server as usize];
            for &item in items {
                if !srv.access(item) {
                    // Only possible without the distinguished service
                    // class (DistinguishedMode::InLru): the copy was
                    // evicted, so the client falls back to the database
                    // and repopulates the server.
                    debug_assert_eq!(
                        self.config.distinguished,
                        DistinguishedMode::InLru,
                        "pinned distinguished copy of {item} missing on server {server}"
                    );
                    self.metrics.db_fetches += 1;
                    srv.insert_replica(item);
                }
            }
            self.metrics.record_txn_size(items.len());
        }
        outcome.round2_txns = second_round.len();

        // Miss write-back (§III-C2): the paper refills "only … the
        // replica that was the first to be picked by the greedy set cover
        // algorithm" — the planned server; the distinguished copy needs no
        // refill under pinning. Alternative policies for the ablation.
        match self.config.writeback {
            WritebackPolicy::None => {}
            WritebackPolicy::FirstPicked => {
                for (item, server) in misses {
                    self.servers[server as usize].insert_replica(item);
                    self.metrics.writebacks += 1;
                }
            }
            WritebackPolicy::AllReplicas => {
                let mut reps = Vec::with_capacity(self.config.logical_replication);
                for (item, _) in misses {
                    self.bundler.placement().replicas_into(item, &mut reps);
                    for &s in &reps {
                        self.servers[s as usize].insert_replica(item);
                        self.metrics.writebacks += 1;
                    }
                }
            }
        }

        outcome.items_delivered = satisfied.len(); // round 2 fetched the rest
        self.metrics.requests += 1;
        self.metrics.round1_txns += outcome.round1_txns as u64;
        self.metrics.round2_txns += outcome.round2_txns as u64;
        self.plan_buf = plan;
        outcome
    }

    /// Execute a write of `item` under `policy` (§III-G / §IV). Returns
    /// the number of server transactions it cost.
    ///
    /// * [`WritePolicy::WriteAll`] refreshes every logical replica: the
    ///   pinned distinguished copy is updated in place; the others are
    ///   (re)inserted into the replica caches, possibly evicting colder
    ///   items.
    /// * [`WritePolicy::InvalidateThenWrite`] deletes the
    ///   non-distinguished replicas and updates only the distinguished
    ///   copy — the atomic scheme; subsequent reads recreate replicas on
    ///   demand through the miss/write-back path.
    pub fn execute_write(&mut self, item: ItemId, policy: WritePolicy) -> usize {
        assert!(
            (item as usize) < self.universe,
            "write of unknown item {item}"
        );
        let replicas = self.bundler.placement().replicas(item);
        let txns = match policy {
            WritePolicy::WriteAll => {
                for &server in &replicas[1..] {
                    self.servers[server as usize].insert_replica(item);
                }
                // Distinguished copy updated in place (pinned; no cache
                // state change to model for unit-size items).
                replicas.len()
            }
            WritePolicy::InvalidateThenWrite => {
                for &server in &replicas[1..] {
                    // A delete of an absent replica still costs the
                    // round-trip, so it counts either way.
                    self.servers[server as usize].remove_replica(item);
                    self.metrics.invalidations += 1;
                }
                replicas.len()
            }
        };
        self.metrics.writes += 1;
        self.metrics.write_txns += txns as u64;
        txns
    }

    /// Execute a bundled write of `items` under `policy`, mirroring the
    /// client's `multi_set`: per-replica stores/invalidations are grouped
    /// by server, and every touched server costs ONE transaction per
    /// phase (one pipelined burst) instead of one per item-replica.
    /// Returns the number of server transactions the batch cost.
    ///
    /// Cache-state effects and the per-item metrics (`writes`,
    /// `invalidations`) are identical to calling
    /// [`execute_write`](Self::execute_write) once per item; only the
    /// transaction accounting changes. Comparing `write_txns` between the
    /// two paths is what makes the fixed-`k` write amplification — and
    /// the bundling relief the write planner buys — visible in the sim
    /// grid.
    pub fn execute_write_batch(&mut self, items: &[ItemId], policy: WritePolicy) -> usize {
        if items.is_empty() {
            return 0;
        }
        let mut write_touched = vec![false; self.servers.len()];
        let mut inval_touched = vec![false; self.servers.len()];
        let mut replicas = Vec::with_capacity(self.config.logical_replication);
        for &item in items {
            assert!(
                (item as usize) < self.universe,
                "write of unknown item {item}"
            );
            self.bundler.placement().replicas_into(item, &mut replicas);
            match policy {
                WritePolicy::WriteAll => {
                    for &server in &replicas[1..] {
                        self.servers[server as usize].insert_replica(item);
                        write_touched[server as usize] = true;
                    }
                    write_touched[replicas[0] as usize] = true;
                }
                WritePolicy::InvalidateThenWrite => {
                    for &server in &replicas[1..] {
                        self.servers[server as usize].remove_replica(item);
                        self.metrics.invalidations += 1;
                        inval_touched[server as usize] = true;
                    }
                    write_touched[replicas[0] as usize] = true;
                }
            }
        }
        let txns = write_touched.iter().filter(|&&t| t).count()
            + inval_touched.iter().filter(|&&t| t).count();
        self.metrics.writes += items.len() as u64;
        self.metrics.write_txns += txns as u64;
        txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnb_core::PlacementKind;

    fn basic_cluster(servers: usize, replication: usize, universe: usize) -> SimCluster {
        SimCluster::new(SimConfig::basic(servers, replication), universe)
    }

    #[test]
    fn unlimited_memory_never_misses() {
        let mut c = basic_cluster(8, 3, 1000);
        for start in (0..900).step_by(90) {
            let request: Vec<ItemId> = (start..start + 30).collect();
            let out = c.execute(&request);
            assert_eq!(out.planned_misses, 0);
            assert_eq!(out.round2_txns, 0);
            assert_eq!(out.items_delivered, 30);
        }
        assert_eq!(c.metrics().planned_misses, 0);
        assert_eq!(c.metrics().requests, 10);
    }

    #[test]
    fn replication_one_equals_plain_memcached() {
        // k=1: every planned access is the pinned distinguished copy.
        let mut c = SimCluster::new(
            SimConfig {
                memory: MemoryModel::Factor(1.0),
                ..SimConfig::basic(8, 1)
            },
            500,
        );
        let request: Vec<ItemId> = (0..40).collect();
        let out = c.execute(&request);
        assert_eq!(out.planned_misses, 0, "distinguished copies never miss");
        assert_eq!(out.round2_txns, 0);
        assert_eq!(out.items_delivered, 40);
    }

    #[test]
    fn cold_replicas_miss_then_warm_up() {
        let mut c = SimCluster::new(SimConfig::enhanced(8, 3, 3.0).with_hitchhiking(false), 400);
        let request: Vec<ItemId> = (0..40).collect();
        let first = c.execute(&request);
        // Cold caches: every non-distinguished planned fetch misses, but
        // everything is still delivered via round 2.
        assert!(first.planned_misses > 0);
        assert!(first.round2_txns > 0);
        assert_eq!(first.items_delivered, 40);
        // Write-back warmed the planned replicas: the same request now
        // runs clean.
        let second = c.execute(&request);
        assert_eq!(
            second.planned_misses, 0,
            "write-back should have warmed the caches"
        );
        assert_eq!(second.round2_txns, 0);
        assert!(second.round1_txns <= first.round1_txns);
    }

    #[test]
    fn factor_one_always_falls_back_to_distinguished() {
        // Memory factor 1.0 → zero replica space → every non-distinguished
        // planned access misses forever, but delivery never fails.
        let mut c = SimCluster::new(SimConfig::enhanced(8, 4, 1.0).with_hitchhiking(false), 400);
        for _ in 0..3 {
            let out = c.execute(&(0..50).collect::<Vec<_>>());
            assert_eq!(out.items_delivered, 50);
            assert!(out.planned_misses > 0);
        }
        for s in 0..8 {
            assert_eq!(c.server(s).replica_count(), 0);
        }
    }

    #[test]
    fn hitchhiking_rescues_misses() {
        // With hitchhiking, an item whose planned replica is cold can be
        // served by its pinned distinguished copy when that server is
        // visited anyway — shrinking round 2. Cold caches + a request wide
        // enough to visit most servers make rescues very likely.
        let cfg_off = SimConfig::enhanced(8, 2, 1.0).with_hitchhiking(false);
        let cfg_on = SimConfig::enhanced(8, 2, 1.0).with_hitchhiking(true);
        let request: Vec<ItemId> = (0..60).collect();
        let mut off = SimCluster::new(cfg_off, 200);
        let mut on = SimCluster::new(cfg_on, 200);
        let o_off = off.execute(&request);
        let o_on = on.execute(&request);
        // Same plan in both runs (hitchhiking does not change planning):
        assert_eq!(o_on.round1_txns, o_off.round1_txns);
        assert_eq!(o_on.planned_misses, o_off.planned_misses);
        assert!(o_off.planned_misses > 0, "cold caches must miss");
        assert_eq!(o_off.rescued, 0, "no rescues without hitchhiking");
        assert!(o_on.rescued > 0, "hitchhiking should rescue some misses");
        assert!(o_on.round2_txns <= o_off.round2_txns);
        assert!(on.metrics().hitchhiker_hits > 0);
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let mut c = basic_cluster(4, 2, 100);
        c.execute(&[1, 2, 3]);
        c.execute(&[4, 5]);
        assert_eq!(c.metrics().requests, 2);
        assert!(c.metrics().round1_txns >= 2);
        c.reset_metrics();
        assert_eq!(c.metrics(), &Metrics::default());
    }

    #[test]
    fn limit_requests_deliver_at_least_the_limit() {
        let mut c = basic_cluster(8, 2, 1000);
        let request: Vec<ItemId> = (0..50).collect();
        let out = c.execute_with_limit(&request, Some(25));
        assert!(out.items_delivered >= 25);
        assert!(out.items_delivered <= 50);
        let full = c.execute_with_limit(&request, None);
        assert_eq!(full.items_delivered, 50);
        assert!(out.total_txns() <= full.total_txns());
    }

    #[test]
    fn multihash_placement_also_works() {
        let mut c = SimCluster::new(
            SimConfig::basic(8, 3).with_placement(PlacementKind::MultiHash),
            500,
        );
        let out = c.execute(&(0..30).collect::<Vec<_>>());
        assert_eq!(out.items_delivered, 30);
        assert_eq!(out.planned_misses, 0);
    }

    #[test]
    fn bundled_load_stays_balanced_across_servers() {
        // TPRPS assumes even load; verify the greedy cover does not
        // concentrate transactions on a few servers under a uniform
        // workload.
        let mut c = basic_cluster(16, 3, 20_000);
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..2000 {
            let request: Vec<ItemId> = (0..15).map(|_| rng.random_range(0..20_000)).collect();
            c.execute(&request);
        }
        let imbalance = c.load_imbalance();
        assert!(
            imbalance < 1.25,
            "greedy bundling skewed the load: {imbalance}"
        );
        assert_eq!(
            c.server_txn_counts().iter().sum::<u64>(),
            c.metrics().total_txns(),
            "per-server counts must reconcile with the totals"
        );
    }

    #[test]
    fn in_lru_mode_can_lose_distinguished_copies_but_db_rescues() {
        // Without the distinguished service class, heavy traffic over a
        // tight budget evicts distinguished copies; delivery still
        // succeeds via (counted) database fetches. With pinning the same
        // setup does zero database fetches — the §III-D guarantee.
        let mk = |mode: DistinguishedMode| SimConfig {
            distinguished: mode,
            ..SimConfig::enhanced(4, 3, 1.1).with_hitchhiking(false)
        };
        let universe = 300;
        let mut shared = SimCluster::new(mk(DistinguishedMode::InLru), universe);
        let mut pinned = SimCluster::new(mk(DistinguishedMode::Pinned), universe);
        for r in 0..200u64 {
            let request: Vec<ItemId> = (0..20)
                .map(|i| (r * 31 + i * 17) % universe as u64)
                .collect();
            let o1 = shared.execute(&request);
            let o2 = pinned.execute(&request);
            assert_eq!(
                o1.items_delivered,
                o1.items_delivered.max(o2.items_delivered)
            );
        }
        assert!(
            shared.metrics().db_fetches > 0,
            "tight shared LRU should lose copies"
        );
        assert_eq!(
            pinned.metrics().db_fetches,
            0,
            "pinning must prevent database fetches"
        );
    }

    #[test]
    fn writeback_none_keeps_caches_cold() {
        let cfg = SimConfig {
            writeback: WritebackPolicy::None,
            ..SimConfig::enhanced(8, 3, 3.0).with_hitchhiking(false)
        };
        let mut c = SimCluster::new(cfg, 400);
        let request: Vec<ItemId> = (0..40).collect();
        let first = c.execute(&request);
        let second = c.execute(&request);
        assert!(first.planned_misses > 0);
        assert_eq!(
            second.planned_misses, first.planned_misses,
            "without write-back the same plan must keep missing"
        );
        assert_eq!(c.metrics().writebacks, 0);
    }

    #[test]
    fn writeback_all_replicas_warms_faster_than_first_picked() {
        let run = |policy: WritebackPolicy| {
            let cfg = SimConfig {
                writeback: policy,
                ..SimConfig::enhanced(8, 3, 4.0).with_hitchhiking(false)
            };
            let mut c = SimCluster::new(cfg, 400);
            // One warming pass over several overlapping requests, then
            // measure misses on shifted requests (which reuse items but
            // via different plans).
            for start in 0..8u64 {
                c.execute(&(start..start + 40).collect::<Vec<_>>());
            }
            c.reset_metrics();
            for start in 0..8u64 {
                c.execute(&(start + 2..start + 38).collect::<Vec<_>>());
            }
            c.metrics().planned_misses
        };
        let first = run(WritebackPolicy::FirstPicked);
        let all = run(WritebackPolicy::AllReplicas);
        assert!(
            all <= first,
            "AllReplicas ({all}) should miss no more than FirstPicked ({first})"
        );
    }

    #[test]
    fn hitchhiker_lru_policies_have_same_hits_first_pass() {
        // On the first pass over cold caches the two policies see the
        // same state, so hit counts match; they diverge only through
        // recency effects afterwards.
        let mk = |policy: HitchhikerLru| SimConfig {
            hitchhiker_lru: policy,
            ..SimConfig::enhanced(8, 2, 1.0)
        };
        let request: Vec<ItemId> = (0..60).collect();
        let mut on_hit = SimCluster::new(mk(HitchhikerLru::OnHit), 200);
        let mut never = SimCluster::new(mk(HitchhikerLru::Never), 200);
        on_hit.execute(&request);
        never.execute(&request);
        assert_eq!(
            on_hit.metrics().hitchhiker_probes,
            never.metrics().hitchhiker_probes
        );
        assert_eq!(
            on_hit.metrics().hitchhiker_hits,
            never.metrics().hitchhiker_hits
        );
    }

    #[test]
    fn write_all_refreshes_replicas() {
        let mut c = SimCluster::new(SimConfig::enhanced(8, 3, 3.0).with_hitchhiking(false), 200);
        let txns = c.execute_write(5, WritePolicy::WriteAll);
        assert_eq!(txns, 3);
        assert_eq!(c.metrics().writes, 1);
        assert_eq!(c.metrics().write_txns, 3);
        assert_eq!(c.metrics().invalidations, 0);
        // All replicas now resident: a read of {5} plans its distinguished
        // copy (single-item rule) and hits.
        let out = c.execute(&[5]);
        assert_eq!(out.planned_misses, 0);
    }

    #[test]
    fn invalidate_then_write_clears_replicas() {
        let mut c = SimCluster::new(SimConfig::enhanced(8, 3, 3.0).with_hitchhiking(false), 200);
        // Warm all replicas of item 5 via WriteAll, then invalidate.
        c.execute_write(5, WritePolicy::WriteAll);
        let reps = c.bundler.placement().replicas(5);
        for &s in &reps[1..] {
            assert!(c.server(s).holds(5));
        }
        let txns = c.execute_write(5, WritePolicy::InvalidateThenWrite);
        assert_eq!(txns, 3);
        assert_eq!(c.metrics().invalidations, 2);
        for &s in &reps[1..] {
            assert!(
                !c.server(s).holds(5),
                "replica on {s} should be invalidated"
            );
        }
        // The distinguished copy survives — reads still succeed.
        assert!(c.server(reps[0]).holds(5));
        let out = c.execute(&[5]);
        assert_eq!(out.items_delivered, 1);
        assert_eq!(
            out.planned_misses, 0,
            "single-item reads go to the distinguished copy"
        );
    }

    #[test]
    fn write_metrics_flow_into_txns_per_op() {
        let mut c = basic_cluster(8, 2, 100);
        c.execute(&(0..10).collect::<Vec<_>>());
        c.execute_write(3, WritePolicy::WriteAll);
        let m = c.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.writes, 1);
        assert!(m.txns_per_op() > 0.0);
        assert_eq!(m.total_txns_with_writes(), m.total_txns() + 2);
    }

    #[test]
    #[should_panic(expected = "unknown item")]
    fn write_of_out_of_universe_item_rejected() {
        let mut c = basic_cluster(4, 2, 10);
        c.execute_write(99, WritePolicy::WriteAll);
    }

    #[test]
    fn batched_writes_cost_one_txn_per_touched_server() {
        let cfg = SimConfig::enhanced(8, 3, 3.0).with_hitchhiking(false);
        let items: Vec<ItemId> = (0..40).collect();
        let mut batched = SimCluster::new(cfg.clone(), 200);
        let mut sequential = SimCluster::new(cfg, 200);

        let batch_txns = batched.execute_write_batch(&items, WritePolicy::WriteAll);
        let mut seq_txns = 0;
        for &item in &items {
            seq_txns += sequential.execute_write(item, WritePolicy::WriteAll);
        }

        // The bundled burst touches each server at most once, so it can
        // never exceed the server count — while the per-item path pays
        // k txns per item (the fixed-k write amplification).
        assert!(batch_txns <= 8, "batch cost {batch_txns} txns");
        assert_eq!(seq_txns, 40 * 3);
        assert!(batch_txns < seq_txns);
        assert_eq!(batched.metrics().writes, 40);
        assert_eq!(batched.metrics().write_txns, batch_txns as u64);

        // Cache state is identical to the sequential loop.
        for &item in &items {
            for &s in &batched.bundler.placement().replicas(item) {
                assert_eq!(
                    batched.server(s).holds(item),
                    sequential.server(s).holds(item)
                );
            }
        }
    }

    #[test]
    fn batched_invalidate_counts_both_phases() {
        let mut c = SimCluster::new(SimConfig::enhanced(8, 3, 3.0).with_hitchhiking(false), 200);
        let items: Vec<ItemId> = (0..20).collect();
        // Warm every replica so the invalidations have something to clear.
        c.execute_write_batch(&items, WritePolicy::WriteAll);
        c.reset_metrics();

        let txns = c.execute_write_batch(&items, WritePolicy::InvalidateThenWrite);
        // One txn per touched server per phase: invalidation burst plus
        // distinguished-write burst, each bounded by the server count.
        assert!(txns <= 16, "two phases over 8 servers, got {txns}");
        assert_eq!(c.metrics().invalidations, 20 * 2);
        assert_eq!(c.metrics().write_txns, txns as u64);
        for &item in &items {
            let reps = c.bundler.placement().replicas(item);
            assert!(c.server(reps[0]).holds(item));
            for &s in &reps[1..] {
                assert!(!c.server(s).holds(item));
            }
        }
    }

    #[test]
    fn empty_write_batch_is_free() {
        let mut c = basic_cluster(4, 2, 10);
        assert_eq!(c.execute_write_batch(&[], WritePolicy::WriteAll), 0);
        assert_eq!(c.metrics().writes, 0);
        assert_eq!(c.metrics().write_txns, 0);
    }

    /// Reproduces Fig 7's locality story as a deterministic check: two
    /// overlapping requests bundle their shared items onto the same
    /// server, so the copies on other servers go cold (never touched) and
    /// are eventually evicted by unrelated traffic.
    #[test]
    fn fig7_request_locality_keeps_shared_replicas_hot() {
        let mut c = SimCluster::new(SimConfig::enhanced(4, 2, 2.0).with_hitchhiking(false), 64);
        // Two requests sharing items {1, 2}, as in the figure.
        let req1: Vec<ItemId> = vec![1, 2, 3];
        let req2: Vec<ItemId> = vec![1, 2, 4];
        // Warm up both.
        c.execute(&req1);
        c.execute(&req2);
        c.reset_metrics();
        // Greedy is deterministic: replay both requests and record where
        // the shared items are fetched from.
        let fetch_servers = |cluster: &mut SimCluster, req: &[ItemId]| {
            let plan = cluster.bundler.plan(req);
            plan.assignment()
                .filter(|(i, _)| *i == 1 || *i == 2)
                .collect::<Vec<_>>()
        };
        let a = fetch_servers(&mut c, &req1);
        let b = fetch_servers(&mut c, &req2);
        // Both requests fetch item 1 and item 2 from the same server as
        // each other (the property that makes the *other* replicas cold).
        assert_eq!(
            a, b,
            "shared items should be fetched identically across requests"
        );
        c.execute(&req1);
        c.execute(&req2);
        assert_eq!(
            c.metrics().planned_misses,
            0,
            "locality keeps the chosen replicas warm"
        );
    }
}
