//! Item-granularity LRU cache used by the simulated servers.
//!
//! Classic intrusive doubly-linked list over a slab, with a hash index —
//! O(1) touch/insert/evict. Capacity is counted in items (the paper's
//! unit-size-item assumption).

use rnb_hash::ItemId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    item: ItemId,
    prev: usize,
    next: usize,
}

/// An LRU set of items with a fixed capacity.
#[derive(Debug)]
pub struct ItemLru {
    map: HashMap<ItemId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl ItemLru {
    /// An LRU holding at most `capacity` items (0 stores nothing).
    pub fn new(capacity: usize) -> Self {
        ItemLru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Items currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Presence check without touching recency.
    pub fn contains(&self, item: ItemId) -> bool {
        self.map.contains_key(&item)
    }

    /// Look up `item`, promoting it to most-recently-used on a hit.
    pub fn touch(&mut self, item: ItemId) -> bool {
        match self.map.get(&item) {
            Some(&idx) => {
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => false,
        }
    }

    /// Insert `item` as most-recently-used, evicting the LRU item if the
    /// cache is full. Returns the evicted item, if any. Inserting an
    /// already-resident item just promotes it.
    pub fn insert(&mut self, item: ItemId) -> Option<ItemId> {
        if self.capacity == 0 {
            return None;
        }
        if self.touch(item) {
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            self.pop_back()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    item,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    item,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(item, idx);
        evicted
    }

    /// Remove `item` if resident; returns whether it was present.
    pub fn remove(&mut self, item: ItemId) -> bool {
        match self.map.remove(&item) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// The least-recently-used item, if any.
    pub fn lru_item(&self) -> Option<ItemId> {
        (self.tail != NIL).then(|| self.nodes[self.tail].item)
    }

    /// Iterate items from most- to least-recently-used.
    pub fn iter_mru(&self) -> impl Iterator<Item = ItemId> + '_ {
        std::iter::successors((self.head != NIL).then_some(self.head), move |&i| {
            let n = self.nodes[i].next;
            (n != NIL).then_some(n)
        })
        .map(|i| self.nodes[i].item)
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn pop_back(&mut self) -> Option<ItemId> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let item = self.nodes[idx].item;
        self.unlink(idx);
        self.map.remove(&item);
        self.free.push(idx);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_touch_evict() {
        let mut lru = ItemLru::new(3);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert_eq!(lru.insert(3), None);
        assert_eq!(lru.len(), 3);
        // 1 is LRU; touching it saves it, so 2 gets evicted next.
        assert!(lru.touch(1));
        assert_eq!(lru.insert(4), Some(2));
        assert!(lru.contains(1) && lru.contains(3) && lru.contains(4));
        assert!(!lru.contains(2));
    }

    #[test]
    fn reinsert_promotes_without_evicting() {
        let mut lru = ItemLru::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(1), None); // promote, no eviction
        assert_eq!(lru.insert(3), Some(2));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut lru = ItemLru::new(0);
        assert_eq!(lru.insert(1), None);
        assert!(!lru.contains(1));
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut lru = ItemLru::new(2);
        lru.insert(1);
        assert!(lru.remove(1));
        assert!(!lru.remove(1));
        lru.insert(2);
        lru.insert(3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.iter_mru().collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn mru_order() {
        let mut lru = ItemLru::new(4);
        for i in 1..=4 {
            lru.insert(i);
        }
        assert_eq!(lru.iter_mru().collect::<Vec<_>>(), vec![4, 3, 2, 1]);
        assert_eq!(lru.lru_item(), Some(1));
        lru.touch(2);
        assert_eq!(lru.iter_mru().collect::<Vec<_>>(), vec![2, 4, 3, 1]);
    }

    #[test]
    fn touch_missing_is_false() {
        let mut lru = ItemLru::new(2);
        assert!(!lru.touch(42));
    }

    /// Model-based test: the slab LRU behaves exactly like a naive
    /// Vec-based reference implementation under arbitrary op sequences.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(ItemId),
        Touch(ItemId),
        Remove(ItemId),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..20).prop_map(Op::Insert),
            (0u64..20).prop_map(Op::Touch),
            (0u64..20).prop_map(Op::Remove),
        ]
    }

    struct NaiveLru {
        items: Vec<ItemId>, // front = MRU
        capacity: usize,
    }

    impl NaiveLru {
        fn insert(&mut self, item: ItemId) -> Option<ItemId> {
            if self.capacity == 0 {
                return None;
            }
            if let Some(pos) = self.items.iter().position(|&i| i == item) {
                self.items.remove(pos);
                self.items.insert(0, item);
                return None;
            }
            let evicted = if self.items.len() >= self.capacity {
                self.items.pop()
            } else {
                None
            };
            self.items.insert(0, item);
            evicted
        }
        fn touch(&mut self, item: ItemId) -> bool {
            if let Some(pos) = self.items.iter().position(|&i| i == item) {
                self.items.remove(pos);
                self.items.insert(0, item);
                true
            } else {
                false
            }
        }
        fn remove(&mut self, item: ItemId) -> bool {
            if let Some(pos) = self.items.iter().position(|&i| i == item) {
                self.items.remove(pos);
                true
            } else {
                false
            }
        }
    }

    proptest! {
        #[test]
        fn matches_reference_model(
            capacity in 0usize..6,
            ops in proptest::collection::vec(op_strategy(), 0..120),
        ) {
            let mut real = ItemLru::new(capacity);
            let mut model = NaiveLru { items: Vec::new(), capacity };
            for op in ops {
                match op {
                    Op::Insert(i) => prop_assert_eq!(real.insert(i), model.insert(i)),
                    Op::Touch(i) => prop_assert_eq!(real.touch(i), model.touch(i)),
                    Op::Remove(i) => prop_assert_eq!(real.remove(i), model.remove(i)),
                }
                prop_assert_eq!(real.len(), model.items.len());
                prop_assert_eq!(real.iter_mru().collect::<Vec<_>>(), model.items.clone());
            }
        }
    }
}
