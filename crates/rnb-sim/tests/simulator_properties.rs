//! Property tests over the full cluster simulator: invariants that must
//! hold for *any* configuration and request mix.

use proptest::prelude::*;
use rnb_core::WritePolicy;
use rnb_sim::config::{DistinguishedMode, HitchhikerLru, WritebackPolicy};
use rnb_sim::{MemoryModel, SimCluster, SimConfig};

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..12, // servers
        1usize..5,  // logical replication
        prop_oneof![
            Just(MemoryModel::Unlimited),
            (10u32..40).prop_map(|f| MemoryModel::Factor(f as f64 / 10.0)),
        ],
        any::<bool>(), // hitchhiking
        prop_oneof![Just(HitchhikerLru::OnHit), Just(HitchhikerLru::Never)],
        prop_oneof![
            Just(WritebackPolicy::None),
            Just(WritebackPolicy::FirstPicked),
            Just(WritebackPolicy::AllReplicas),
        ],
    )
        .prop_map(|(servers, k, memory, hh, hh_lru, wb)| SimConfig {
            memory,
            hitchhiking: hh,
            hitchhiker_lru: hh_lru,
            writeback: wb,
            ..SimConfig::basic(servers, k)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request is fully delivered, transaction counts are within
    /// bounds, and accounting reconciles — for arbitrary configurations.
    #[test]
    fn delivery_and_accounting_invariants(
        config in arb_config(),
        requests in proptest::collection::vec(
            proptest::collection::vec(0u64..300, 1..40), 1..25),
    ) {
        let servers = config.servers;
        let mut cluster = SimCluster::new(config, 300);
        for request in &requests {
            let mut distinct = request.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let out = cluster.execute(request);
            // Pinned distinguished copies guarantee full delivery.
            prop_assert_eq!(out.items_delivered, distinct.len());
            // Never more round-1 transactions than servers or items.
            prop_assert!(out.round1_txns <= servers.min(distinct.len()));
            // Round 2 can at most revisit every server once.
            prop_assert!(out.round2_txns <= servers);
            // Rescues never exceed misses.
            prop_assert!(out.rescued <= out.planned_misses);
        }
        let m = cluster.metrics();
        prop_assert_eq!(m.requests, requests.len() as u64);
        prop_assert_eq!(
            cluster.server_txn_counts().iter().sum::<u64>(),
            m.total_txns()
        );
        // Histogram reconciles with the transaction count.
        prop_assert_eq!(m.txn_size_hist.iter().sum::<u64>(), m.total_txns());
        // Without hitchhiking there can be no hitchhiker traffic.
        if !cluster.config().hitchhiking {
            prop_assert_eq!(m.hitchhiker_probes, 0);
        }
        if cluster.config().writeback == WritebackPolicy::None {
            prop_assert_eq!(m.writebacks, 0);
        }
    }

    /// Replaying the same stream on two identically configured clusters
    /// produces identical metrics (full determinism).
    #[test]
    fn determinism(
        config in arb_config(),
        requests in proptest::collection::vec(
            proptest::collection::vec(0u64..200, 1..25), 1..15),
    ) {
        let mut a = SimCluster::new(config.clone(), 200);
        let mut b = SimCluster::new(config, 200);
        for request in &requests {
            let oa = a.execute(request);
            let ob = b.execute(request);
            prop_assert_eq!(oa, ob);
        }
        prop_assert_eq!(a.metrics(), b.metrics());
    }

    /// Writes never break subsequent reads, under either policy.
    #[test]
    fn writes_then_reads(
        config in arb_config(),
        ops in proptest::collection::vec((0u64..100, any::<bool>()), 1..40),
    ) {
        let mut cluster = SimCluster::new(config, 100);
        for (item, write_all) in ops {
            let policy = if write_all {
                WritePolicy::WriteAll
            } else {
                WritePolicy::InvalidateThenWrite
            };
            let txns = cluster.execute_write(item, policy);
            prop_assert!(txns >= 1);
            let out = cluster.execute(&[item, (item + 1) % 100]);
            prop_assert_eq!(out.items_delivered, 2);
        }
    }
}

/// The InLru distinguished mode may fetch from the database but must
/// still deliver everything.
#[test]
fn in_lru_mode_always_delivers() {
    let config = SimConfig {
        distinguished: DistinguishedMode::InLru,
        ..SimConfig::enhanced(4, 3, 1.2)
    };
    let mut cluster = SimCluster::new(config, 200);
    for r in 0..100u64 {
        let request: Vec<u64> = (0..15).map(|i| (r * 13 + i * 7) % 200).collect();
        let mut distinct = request.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let out = cluster.execute(&request);
        assert_eq!(out.items_delivered, distinct.len());
    }
}
