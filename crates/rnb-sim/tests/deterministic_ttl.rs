//! TTL behaviour of the real store under the simulator's deterministic
//! discipline: every expiry decision is a pure function of injected
//! virtual time, so a scripted run is exactly replayable — the property
//! `rnb-sim` already guarantees for randomness (seeded RNGs) extended to
//! the clock.
//!
//! This file is scanned by the xtask lint as non-test code, which is the
//! point: it must need no wall-clock reads and no sleeping to drive the
//! full TTL surface (lazy expiry, CAS-on-expired, arith TTL
//! preservation, expired-first reclamation).

use rnb_store::shard::{ArithOutcome, CasOutcome};
use rnb_store::{Store, TestClock};
use std::time::Duration;

/// One scripted step against a store on virtual time.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Advance the clock by whole seconds.
    Advance(u64),
    /// `set` with an optional TTL in seconds.
    Set(&'static [u8], &'static [u8], Option<u64>),
    /// `get`, observing hit/miss.
    Get(&'static [u8]),
    /// `cas` with the token of the *last observed hit* on that key.
    CasWithLastToken(&'static [u8], &'static [u8]),
    /// `incr` by a delta.
    Incr(&'static [u8], u64),
}

/// What a run observes, step by step — the replay-comparable trace.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Hit(Vec<u8>),
    Miss,
    Stored,
    CasResult(&'static str),
    ArithResult(Option<u64>),
}

fn run_script(script: &[Step]) -> Vec<Observed> {
    let clock = TestClock::new();
    let store = Store::with_clock(1 << 20, 4, clock.clone().into());
    let mut last_token: std::collections::HashMap<Vec<u8>, u64> = Default::default();
    let mut trace = Vec::new();
    for step in script {
        match *step {
            Step::Advance(secs) => clock.advance(Duration::from_secs(secs)),
            Step::Set(key, value, ttl) => {
                store.set_with_ttl(key, value, 0, false, ttl.map(Duration::from_secs));
                trace.push(Observed::Stored);
            }
            Step::Get(key) => match store.get(key) {
                Some(v) => {
                    last_token.insert(key.to_vec(), v.cas);
                    trace.push(Observed::Hit(v.data.to_vec()));
                }
                None => trace.push(Observed::Miss),
            },
            Step::CasWithLastToken(key, value) => {
                let token = last_token.get(key).copied().unwrap_or(0);
                let outcome = store.cas(key, value, 0, token, None);
                trace.push(Observed::CasResult(match outcome {
                    CasOutcome::Stored => "stored",
                    CasOutcome::Exists => "exists",
                    CasOutcome::NotFound => "not_found",
                    CasOutcome::OutOfMemory => "oom",
                }));
            }
            Step::Incr(key, delta) => {
                let outcome = store.arith(key, delta, false);
                trace.push(Observed::ArithResult(match outcome {
                    ArithOutcome::Value(v) => Some(v),
                    ArithOutcome::NotFound | ArithOutcome::NonNumeric => None,
                }));
            }
        }
    }
    trace
}

/// The scripted scenario: covers lazy expiry, CAS-on-expired, and
/// exact arith TTL preservation, with every expected value pinned.
const SCRIPT: &[Step] = &[
    // TTL expiry is lazy but effective.
    Step::Set(b"fleeting", b"v1", Some(10)),
    Step::Set(b"lasting", b"v2", None),
    Step::Get(b"fleeting"), // hit, records CAS token
    Step::Advance(9),
    Step::Get(b"fleeting"), // still alive at t=9
    Step::Advance(1),
    Step::Get(b"fleeting"), // dead exactly at t=10
    Step::Get(b"lasting"),  // unaffected
    // CAS on an expired entry is NotFound, not Exists.
    Step::Set(b"casualty", b"v3", Some(5)),
    Step::Get(b"casualty"), // records token at t=10
    Step::Advance(6),
    Step::CasWithLastToken(b"casualty", b"v4"), // t=16: expired -> not_found
    // Arith preserves the remaining TTL exactly.
    Step::Set(b"counter", b"41", Some(100)), // expires at t=116
    Step::Advance(40),
    Step::Incr(b"counter", 1), // t=56: 42, deadline still t=116
    Step::Advance(59),
    Step::Get(b"counter"), // t=115: one second left
    Step::Advance(1),
    Step::Get(b"counter"),     // t=116: the original deadline holds
    Step::Incr(b"counter", 1), // expired -> miss path -> None
];

#[test]
fn scripted_ttl_run_matches_expected_trace() {
    let trace = run_script(SCRIPT);
    let expected = vec![
        Observed::Stored,
        Observed::Stored,
        Observed::Hit(b"v1".to_vec()),
        Observed::Hit(b"v1".to_vec()),
        Observed::Miss,
        Observed::Hit(b"v2".to_vec()),
        Observed::Stored,
        Observed::Hit(b"v3".to_vec()),
        Observed::CasResult("not_found"),
        Observed::Stored,
        Observed::ArithResult(Some(42)),
        Observed::Hit(b"42".to_vec()),
        Observed::Miss,
        Observed::ArithResult(None),
    ];
    assert_eq!(trace, expected);
}

#[test]
fn scripted_ttl_run_is_replay_identical() {
    // The deterministic-runner property: two independent stores fed the
    // same script on fresh virtual timelines observe byte-identical
    // traces. With wall-clock expiry this held only when the runs raced
    // real deadlines identically; with injected time it is exact.
    let first = run_script(SCRIPT);
    let second = run_script(SCRIPT);
    assert_eq!(first, second);
}
