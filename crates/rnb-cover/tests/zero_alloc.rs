//! Proof of the planner's zero-steady-state-allocation guarantee.
//!
//! A counting global allocator (vendored `alloc-counter` stand-in) wraps
//! the system allocator with thread-local counters. The first plan of a
//! given shape warms the [`rnb_cover::Planner`]'s pools; every later plan
//! must perform **zero** allocator calls — no allocs, no reallocs, no
//! deallocs — across all `CoverTarget` variants and both candidate entry
//! points.
//!
//! Kept to a single `#[test]` so no sibling test thread muddies the
//! warm-up ordering.

use alloc_counter::{count_alloc, AllocCounterSystem};
use rnb_cover::{CoverTarget, Planner};

#[global_allocator]
static ALLOC: AllocCounterSystem = AllocCounterSystem;

/// Deterministic RnB-shaped request: `m` items, `k` candidate servers
/// each, drawn from `n` servers. Flat layout so replanning reads borrowed
/// slices and the measurement sees only the planner's own behaviour.
fn flat_candidates(m: usize, k: usize, n: u32, salt: u32) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32];
    let mut flat = Vec::new();
    for item in 0..m as u32 {
        for r in 0..k as u32 {
            // Cheap mix, enough spread to vary set shapes per item.
            flat.push((item.wrapping_mul(2654435761).wrapping_add(salt) + r * 7919) % n);
        }
        offsets.push(flat.len() as u32);
    }
    (offsets, flat)
}

#[test]
fn steady_state_planning_does_not_allocate() {
    let mut planner = Planner::new();
    let (offsets, flat) = flat_candidates(200, 2, 100, 17);
    let targets = [
        CoverTarget::Full,
        CoverTarget::AtLeast(150),
        CoverTarget::MaxPicks(8),
    ];

    // Warm-up: first requests grow every pool to this shape.
    for &t in &targets {
        let view = planner.solve_flat_candidates(&offsets, &flat, t);
        assert!(view.covered() > 0);
    }

    // Steady state: identical-shape requests must not touch the allocator.
    for (round, &t) in targets.iter().cycle().take(30).enumerate() {
        let ((allocs, reallocs, deallocs), covered) = count_alloc(|| {
            planner
                .solve_flat_candidates(&offsets, &flat, t)
                .picks()
                .map(|p| p.items.len())
                .sum::<usize>()
        });
        assert!(covered > 0);
        assert_eq!(
            (allocs, reallocs, deallocs),
            (0, 0, 0),
            "round {round} target {t:?} touched the allocator"
        );
    }

    // A *smaller* request after warm-up also stays allocation-free: pools
    // only ever shrink logically, never physically.
    let (small_off, small_flat) = flat_candidates(40, 2, 100, 3);
    let _ = planner.solve_flat_candidates(&small_off, &small_flat, CoverTarget::Full);
    let ((a, r, d), _) = count_alloc(|| {
        planner
            .solve_flat_candidates(&small_off, &small_flat, CoverTarget::Full)
            .covered()
    });
    assert_eq!((a, r, d), (0, 0, 0), "shrunken request allocated");
}
