//! The greedy set-cover heuristic — the paper's bundling workhorse.
//!
//! Classic greedy: repeatedly pick the set covering the most still-uncovered
//! items, until the [`CoverTarget`] is met. Guarantees an `H_n`-factor
//! approximation; the paper's simulations show that on RnB's random
//! placements it is near-optimal in the mean, which
//! `tests::greedy_close_to_exact_on_random_instances` reproduces.
//!
//! Three implementations with identical outputs:
//!
//! * [`greedy_cover`] — the canonical entry point, now a thin wrapper over
//!   a one-shot [`crate::Planner`] (the reusable, allocation-amortised
//!   solver); per-call it still allocates only its output.
//! * [`greedy_cover_reference`] — the seed's straightforward re-scan
//!   (each round computes `|set ∩ uncovered|` with word-wise AND +
//!   popcount), retained verbatim as an independent oracle for the
//!   planner's equivalence proptests and as the bench baseline.
//! * [`lazy_greedy_cover`] — lazy evaluation with a max-heap of stale
//!   gains, exploiting submodularity (a set's gain never increases).
//!   Deliberately **not** a planner wrapper: it is the second independent
//!   oracle, so the `lazy == plain` tests stay meaningful.
//!
//! Ties are broken toward the lowest set index in all three, so they
//! return identical (not merely equally sized) solutions.

use crate::bitset::BitSet;
use crate::instance::{CoverInstance, CoverSolution, CoverTarget, Pick};
use crate::planner::Planner;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy cover via a one-shot [`Planner`].
///
/// Callers planning many covers should hold a [`Planner`] and call
/// [`Planner::plan`] (or the `solve_*` views) directly so scratch memory
/// is reused; this free function exists for one-shot use and keeps the
/// seed API stable.
///
/// ```
/// use rnb_cover::{greedy_cover, CoverInstance, CoverTarget};
/// // Three requested items; item 0 on servers {2}, item 1 on {2, 5},
/// // item 2 on {5}: two transactions cover everything.
/// let inst = CoverInstance::from_item_candidates(&[vec![2], vec![2, 5], vec![5]]);
/// let solution = greedy_cover(&inst, CoverTarget::Full);
/// assert_eq!(solution.picks.len(), 2);
/// assert_eq!(solution.covered, 3);
/// ```
#[must_use]
pub fn greedy_cover(inst: &CoverInstance, target: CoverTarget) -> CoverSolution {
    Planner::new().plan(inst, target)
}

/// Greedy cover by full re-scan each round — the seed implementation,
/// kept as an independent reference.
///
/// [`greedy_cover`] (and therefore [`Planner::plan`]) is pinned
/// byte-identical to this function by the planner's proptests; the
/// `planner` bench measures the speedup against it.
#[must_use]
pub fn greedy_cover_reference(inst: &CoverInstance, target: CoverTarget) -> CoverSolution {
    let need = target.resolve(inst);
    let budget = target.pick_budget();
    let mut uncovered = BitSet::new(inst.universe());
    uncovered.set_all();
    let mut covered = 0usize;
    let mut picks = Vec::new();

    while covered < need && picks.len() < budget {
        // (gain, idx) of the best positive-gain set this round; `None`
        // means no set can cover anything still uncovered.
        let mut best: Option<(usize, usize)> = None;
        for idx in 0..inst.num_sets() {
            let gain = inst.set(idx).intersection_count(&uncovered);
            if gain > best.map_or(0, |(g, _)| g) {
                best = Some((gain, idx));
            }
        }
        let Some((best_gain, best_idx)) = best else {
            debug_assert!(
                false,
                "cover stalled before target: resolve() clamps need to coverable items"
            );
            break;
        };
        let mut newly = inst.set(best_idx).clone();
        newly.intersect_with(&uncovered);
        uncovered.difference_with(&newly);
        covered += best_gain;
        picks.push(Pick {
            set_idx: best_idx,
            label: inst.label(best_idx),
            items: newly.iter_ones().map(|i| i as u32).collect(),
        });
    }

    CoverSolution { picks, covered }
}

/// Greedy cover with lazy gain re-evaluation (identical output to
/// [`greedy_cover`]).
#[must_use]
pub fn lazy_greedy_cover(inst: &CoverInstance, target: CoverTarget) -> CoverSolution {
    let need = target.resolve(inst);
    let budget = target.pick_budget();
    let mut uncovered = BitSet::new(inst.universe());
    uncovered.set_all();
    let mut covered = 0usize;
    let mut picks = Vec::new();

    // Max-heap of (gain, Reverse(idx)) so ties prefer the lowest index,
    // matching greedy_cover's scan order.
    let mut heap: BinaryHeap<(usize, Reverse<usize>)> = (0..inst.num_sets())
        .map(|idx| (inst.set(idx).count_ones(), Reverse(idx)))
        .collect();

    while covered < need && picks.len() < budget {
        let Some((stale_gain, Reverse(idx))) = heap.pop() else {
            debug_assert!(
                false,
                "cover stalled before target: resolve() clamps need to coverable items"
            );
            break;
        };
        if stale_gain == 0 {
            debug_assert!(
                false,
                "cover stalled before target: resolve() clamps need to coverable items"
            );
            break;
        }
        let gain = inst.set(idx).intersection_count(&uncovered);
        if gain < stale_gain {
            // Stale: push back with the refreshed gain. Submodularity means
            // gains only shrink, so the heap top with a *fresh* gain is the
            // true maximum — but a fresh smaller gain might still be the
            // max; we must compare against the next candidate.
            if let Some(&(next_gain, Reverse(next_idx))) = heap.peek() {
                if gain < next_gain || (gain == next_gain && next_idx < idx) {
                    heap.push((gain, Reverse(idx)));
                    continue;
                }
            }
        }
        if gain == 0 {
            // The freshest gain is 0 and (by the re-push test above) no
            // other candidate beats it: nothing left to cover.
            debug_assert!(
                false,
                "cover stalled before target: resolve() clamps need to coverable items"
            );
            break;
        }
        // Fresh enough: take it.
        let mut newly = inst.set(idx).clone();
        newly.intersect_with(&uncovered);
        debug_assert_eq!(
            newly.count_ones(),
            gain,
            "refreshed gain must equal the newly-covered popcount"
        );
        uncovered.difference_with(&newly);
        covered += gain;
        picks.push(Pick {
            set_idx: idx,
            label: inst.label(idx),
            items: newly.iter_ones().map(|i| i as u32).collect(),
        });
    }

    CoverSolution { picks, covered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use proptest::prelude::*;

    fn inst_from(universe: usize, sets: &[&[u32]]) -> CoverInstance {
        let v: Vec<Vec<u32>> = sets.iter().map(|s| s.to_vec()).collect();
        CoverInstance::from_sets(universe, &v)
    }

    #[test]
    fn covers_everything_when_possible() {
        let inst = inst_from(6, &[&[0, 1, 2], &[2, 3], &[4, 5], &[0, 5]]);
        let sol = greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(sol.covered, 6);
        assert_eq!(sol.validate(&inst), Ok(6));
    }

    #[test]
    fn classic_greedy_suboptimality() {
        // The textbook instance where greedy picks 3 sets but 2 suffice:
        // universe {0..5}, optimal = {0,2,4} and {1,3,5}; greedy takes the
        // size-4 set first.
        let inst = inst_from(6, &[&[0, 2, 4], &[1, 3, 5], &[0, 1, 2, 3]]);
        let g = greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(g.picks.len(), 3);
        let e = solve_exact(&inst).unwrap();
        assert_eq!(e.picks.len(), 2);
    }

    #[test]
    fn partial_cover_stops_early() {
        let inst = inst_from(10, &[&[0, 1, 2, 3], &[4, 5, 6], &[7, 8], &[9]]);
        let sol = greedy_cover(&inst, CoverTarget::AtLeast(7));
        assert!(sol.covered >= 7);
        assert_eq!(
            sol.picks.len(),
            2,
            "4 + 3 items reach the limit in two picks"
        );
        assert!(sol.validate(&inst).is_ok());
    }

    #[test]
    fn partial_cover_zero_limit() {
        let inst = inst_from(3, &[&[0, 1, 2]]);
        let sol = greedy_cover(&inst, CoverTarget::AtLeast(0));
        assert_eq!(sol.picks.len(), 0);
        assert_eq!(sol.covered, 0);
    }

    #[test]
    fn max_picks_budget_is_respected() {
        let inst = inst_from(12, &[&[0, 1, 2, 3, 4], &[5, 6, 7], &[8, 9], &[10], &[11]]);
        for budget in 0..=5usize {
            let sol = greedy_cover(&inst, CoverTarget::MaxPicks(budget));
            assert_eq!(sol.picks.len(), budget.min(5));
            assert!(sol.validate(&inst).is_ok());
            let lazy = lazy_greedy_cover(&inst, CoverTarget::MaxPicks(budget));
            assert_eq!(sol.picks, lazy.picks);
        }
        // Greedy order means the budget buys the biggest sets first.
        let two = greedy_cover(&inst, CoverTarget::MaxPicks(2));
        assert_eq!(two.covered, 8);
    }

    #[test]
    fn max_picks_larger_than_needed_is_full_cover() {
        let inst = inst_from(4, &[&[0, 1], &[2, 3]]);
        let sol = greedy_cover(&inst, CoverTarget::MaxPicks(99));
        assert_eq!(sol.covered, 4);
        assert_eq!(sol.picks.len(), 2);
    }

    #[test]
    fn uncoverable_items_are_skipped() {
        // Item 3 is on no set; Full target must still terminate.
        let inst = inst_from(4, &[&[0], &[1, 2]]);
        let sol = greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(sol.covered, 3);
    }

    /// An `AtLeast` target promising more than the union of all sets can
    /// supply must degrade to the best partial cover — identically in both
    /// variants, in debug and release alike — instead of panicking.
    #[test]
    fn over_promising_at_least_degrades_gracefully() {
        // Only 3 of 10 items are coverable; ask for 8.
        let inst = inst_from(10, &[&[0], &[1, 2], &[2]]);
        for solver in [greedy_cover, lazy_greedy_cover] {
            let sol = solver(&inst, CoverTarget::AtLeast(8));
            assert_eq!(sol.covered, 3, "partial cover reaches all coverable items");
            assert!(sol.validate(&inst).is_ok());
            assert!(sol.picks.iter().all(|p| !p.items.is_empty()));
        }
        let a = greedy_cover(&inst, CoverTarget::AtLeast(8));
        let b = lazy_greedy_cover(&inst, CoverTarget::AtLeast(8));
        assert_eq!(a.picks, b.picks);
    }

    /// Over-promising against an instance with no sets at all (the
    /// degenerate RnB case: every requested item missed the cache map).
    #[test]
    fn over_promising_with_no_sets_is_empty_solution() {
        let inst = CoverInstance::from_sets(5, &[]);
        for solver in [greedy_cover, lazy_greedy_cover] {
            let sol = solver(&inst, CoverTarget::AtLeast(5));
            assert_eq!(sol.covered, 0);
            assert!(sol.picks.is_empty());
        }
    }

    /// Empty sets never become picks, even when they are all there is.
    #[test]
    fn all_empty_sets_yield_empty_solution() {
        let inst = inst_from(4, &[&[], &[], &[]]);
        for solver in [greedy_cover, lazy_greedy_cover] {
            let sol = solver(&inst, CoverTarget::AtLeast(2));
            assert_eq!(sol.covered, 0);
            assert!(sol.picks.is_empty());
        }
    }

    #[test]
    fn tie_break_is_lowest_index() {
        let inst = inst_from(4, &[&[0, 1], &[2, 3], &[0, 1]]);
        let sol = greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(sol.picks[0].set_idx, 0);
    }

    #[test]
    fn empty_instance() {
        let inst = CoverInstance::from_sets(0, &[]);
        let sol = greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(sol.picks.len(), 0);
        let lsol = lazy_greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(lsol.picks.len(), 0);
    }

    /// The two greedy variants must produce *identical* solutions.
    #[test]
    fn lazy_matches_plain_on_fixed_cases() {
        let cases: Vec<CoverInstance> = vec![
            inst_from(6, &[&[0, 2, 4], &[1, 3, 5], &[0, 1, 2, 3]]),
            inst_from(10, &[&[0, 1, 2, 3], &[4, 5, 6], &[7, 8], &[9], &[0, 9]]),
            inst_from(4, &[&[0, 1], &[2, 3], &[0, 1]]),
        ];
        for inst in &cases {
            for target in [CoverTarget::Full, CoverTarget::AtLeast(3)] {
                let a = greedy_cover(inst, target);
                let b = lazy_greedy_cover(inst, target);
                let r = greedy_cover_reference(inst, target);
                assert_eq!(a.picks, b.picks);
                assert_eq!(a.covered, b.covered);
                assert_eq!(a.picks, r.picks);
                assert_eq!(a.covered, r.covered);
            }
        }
    }

    proptest! {
        /// Random instances: lazy == plain, both validate, both reach the
        /// target.
        #[test]
        fn lazy_matches_plain_randomised(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..40, 1..12), 1..20),
            limit in 0usize..45,
        ) {
            let inst = CoverInstance::from_sets(40, &sets);
            for target in [CoverTarget::Full, CoverTarget::AtLeast(limit)] {
                let need = target.resolve(&inst);
                let a = greedy_cover(&inst, target);
                let b = lazy_greedy_cover(&inst, target);
                let r = greedy_cover_reference(&inst, target);
                prop_assert_eq!(&a.picks, &b.picks);
                prop_assert_eq!(&a.picks, &r.picks);
                prop_assert!(a.validate(&inst).is_ok());
                prop_assert!(a.covered >= need);
            }
        }

        /// Equal-gain, stale-heap torture test for the tie-break re-push
        /// branch in `lazy_greedy_cover`. A small pool of base sets is
        /// duplicated (duplicates have *exactly* equal gains at every
        /// round, so the `gain == next_gain && next_idx < idx` comparison
        /// decides) and overlaid with union sets (whose picks make many
        /// heap entries stale at once, so refreshed gains keep colliding
        /// with equal stale ones). The two variants must agree pick for
        /// pick — same set indices in the same order, not merely equal
        /// sizes.
        #[test]
        fn lazy_tie_break_matches_plain_on_equal_gain_instances(
            pool in proptest::collection::vec(
                proptest::collection::vec(0u32..24, 1..6), 1..6),
            dups in proptest::collection::vec((0usize..6, 0usize..6), 1..8),
            limit in 0usize..24,
        ) {
            // Duplicates force exact gain ties; pairwise unions both
            // overlap their sources (staleness) and tie with unrelated
            // same-size sets.
            let mut sets = pool.clone();
            for &(a, b) in &dups {
                let a = a % pool.len();
                let b = b % pool.len();
                sets.push(pool[a].clone());
                let mut merged = pool[a].clone();
                merged.extend_from_slice(&pool[b]);
                merged.sort_unstable();
                merged.dedup();
                sets.push(merged);
            }
            let inst = CoverInstance::from_sets(24, &sets);
            for target in [
                CoverTarget::Full,
                CoverTarget::AtLeast(limit),
                CoverTarget::MaxPicks(limit / 4),
            ] {
                let a = greedy_cover(&inst, target);
                let b = lazy_greedy_cover(&inst, target);
                prop_assert_eq!(&a.picks, &b.picks);
                prop_assert_eq!(a.covered, b.covered);
                prop_assert!(a.validate(&inst).is_ok());
            }
        }

        /// Greedy never uses more than H_n times the optimum (checked on
        /// instances small enough for the exact solver), and never fewer
        /// than the optimum.
        #[test]
        fn greedy_vs_exact_bounds(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 1..6), 1..8),
        ) {
            let inst = CoverInstance::from_sets(12, &sets);
            let g = greedy_cover(&inst, CoverTarget::Full);
            let e = solve_exact(&inst).unwrap();
            prop_assert!(g.picks.len() >= e.picks.len());
            // H_12 ≈ 3.1; use ceiling 4 as a loose safety net.
            prop_assert!(g.picks.len() <= e.picks.len() * 4);
        }
    }

    /// Reproduces the paper's observation that greedy is near-optimal in
    /// the mean for random replica placements (§III-A: "a linear time
    /// approximation achieves extremely good results in the context of
    /// RnB").
    #[test]
    fn greedy_close_to_exact_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2013);
        let mut greedy_total = 0usize;
        let mut exact_total = 0usize;
        for _ in 0..60 {
            // 12 items, 8 servers, 3 replicas each — RnB-shaped.
            let items: Vec<Vec<u32>> = (0..12)
                .map(|_| {
                    let mut servers = Vec::new();
                    while servers.len() < 3 {
                        let s = rng.random_range(0..8u32);
                        if !servers.contains(&s) {
                            servers.push(s);
                        }
                    }
                    servers
                })
                .collect();
            let inst = CoverInstance::from_item_candidates(&items);
            greedy_total += greedy_cover(&inst, CoverTarget::Full).picks.len();
            exact_total += solve_exact(&inst).unwrap().picks.len();
        }
        let ratio = greedy_total as f64 / exact_total as f64;
        assert!(ratio < 1.12, "greedy/exact mean ratio {ratio} too high");
    }
}
