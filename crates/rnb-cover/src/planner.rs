//! A reusable, zero-steady-state-allocation cover planner.
//!
//! The paper's premise (§IV) is that bundling is cheap enough to run on
//! every request. The one-shot path — [`CoverInstance::from_item_candidates`]
//! followed by [`crate::greedy_cover`] — is algorithmically that cheap, but
//! it *allocates* per request: an interner, one `BitSet` per candidate
//! server, and fresh pick vectors. [`Planner`] amortizes all of it:
//!
//! * **[`CoverScratch`]** pools every buffer. The universe only grows the
//!   pools; subsequent requests zero words in place instead of
//!   reallocating.
//! * An **epoch-stamped interner** ([`LabelInterner`]) replaces the
//!   per-request `HashMap`: a flat stamp array is "cleared" by bumping one
//!   epoch counter.
//! * A **fused greedy inner loop** computes each winner's gain, the
//!   newly-covered word mask, the uncovered-set update, and the item
//!   extraction in a single pass over the words — the one-shot greedy
//!   spends three extra full-word sweeps per pick (`clone`,
//!   `intersect_with`, `difference_with`).
//! * **Pooled lazy selection** on the dense path: instead of rescanning
//!   every set each round, a pooled max-heap of stale gain upper bounds
//!   (keyed `gain << 32 | !slot`, so equal gains pop the lowest slot — the
//!   exact plain-greedy tie-break) pops candidates, refreshes the top's
//!   gain, and accepts only when the refreshed gain still equals its
//!   bound. Gains are monotone non-increasing, so this reproduces
//!   [`crate::greedy_cover`]'s argmax per round while touching only a few
//!   sets — the same argument that makes [`crate::lazy_greedy_cover`]
//!   exact.
//! * An **exhausted-set skip list**: sets whose gain hits zero are never
//!   reconsidered — dropped from the heap on the dense path, swap-removed
//!   from the scan list on the single-word path.
//! * A **single-word fast path** for small instances (universe ≤ 64
//!   items, the common request size in the paper's experiments): the
//!   uncovered mask lives in a register and per-set membership is one
//!   `u64`, skipping multi-word bitset handling entirely.
//!
//! Output is **byte-identical** to [`crate::greedy_cover`] (same picks,
//! same order, same tie-breaks, same graceful degradation on stalls);
//! `tests` and the crate's proptests pin this against the retained
//! reference implementation.

use crate::instance::{CoverInstance, CoverSolution, CoverTarget, Pick};

/// Epoch-stamped label interner: maps arbitrary `u32` labels (server ids)
/// to dense slots in first-appearance order without per-request clearing.
///
/// `stamp[label] == epoch` means `slot[label]` is valid for the current
/// generation; starting a new generation is a single counter bump. The
/// stamp array is sized to the largest label ever seen, so labels are
/// expected to be small dense ids (RnB server ids `0..N`), not hashes.
#[derive(Debug, Default)]
pub(crate) struct LabelInterner {
    epoch: u32,
    stamp: Vec<u32>,
    slot: Vec<u32>,
}

impl LabelInterner {
    /// Start a new interning generation. All previous slots become invalid
    /// at the cost of one increment.
    pub(crate) fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // The u32 epoch wrapped: a stamp written 2^32 generations ago
            // would now collide, so clear them all once and restart at 1
            // (stamp 0 can then never equal a live epoch).
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Intern `label`, appending it to `labels` on first appearance in the
    /// current generation; returns its dense slot.
    pub(crate) fn intern(&mut self, label: u32, labels: &mut Vec<u32>) -> usize {
        let idx = label as usize;
        if idx >= self.stamp.len() {
            self.stamp.resize(idx + 1, 0);
            self.slot.resize(idx + 1, 0);
        }
        if self.stamp[idx] != self.epoch {
            self.stamp[idx] = self.epoch;
            self.slot[idx] = labels.len() as u32;
            labels.push(label);
        }
        self.slot[idx] as usize
    }
}

/// Pooled planning memory, reused across requests.
///
/// Lifecycle: every buffer is logically reset per request (`clear` +
/// zero-fill within retained capacity, or an interner epoch bump) and
/// physically grows monotonically to the largest request shape seen. After
/// the first request of a given shape, planning performs no allocator
/// calls at all — `crates/rnb-cover/tests/zero_alloc.rs` proves it with a
/// counting global allocator.
#[derive(Debug, Default)]
pub struct CoverScratch {
    interner: LabelInterner,
    /// Slot → label, in first-appearance order (matches
    /// [`CoverInstance::from_item_candidates`]).
    labels: Vec<u32>,
    /// Dense set membership: `num_sets × words_per_set` slab of `u64`s.
    set_words: Vec<u64>,
    /// Word mask of items still uncovered (initialised to the union of all
    /// sets, so its popcount is exactly the coverable-item count).
    uncovered: Vec<u64>,
    /// Skip list of set slots that still have positive gain (single-word
    /// fast path).
    active: Vec<u32>,
    /// Max-heap of `gain << 32 | !slot` keys for the dense path's lazy
    /// selection.
    heap: Vec<u64>,
}

/// One pick in the pooled output buffer; item ranges are delimited by the
/// running `items_end` offsets into [`PlanBuf::items`].
#[derive(Debug, Clone, Copy)]
struct PickMeta {
    set: u32,
    label: u32,
    items_end: u32,
}

/// Pooled solver output: picks as flat metadata plus one shared item
/// vector, so re-planning reuses capacity instead of allocating per pick.
#[derive(Debug, Default)]
struct PlanBuf {
    meta: Vec<PickMeta>,
    items: Vec<u32>,
    covered: usize,
}

impl PlanBuf {
    fn reset(&mut self) {
        self.meta.clear();
        self.items.clear();
        self.covered = 0;
    }
}

/// Borrowed view of the planner's most recent cover, valid until the next
/// `solve_*` call. Use [`PlannedCover::picks`] for zero-allocation
/// consumption or [`PlannedCover::to_solution`] to materialise an owned
/// [`CoverSolution`].
#[derive(Debug)]
pub struct PlannedCover<'a> {
    buf: &'a PlanBuf,
}

/// One pick of a [`PlannedCover`]: the chosen set, its caller label
/// (server id), and the items newly covered by it, ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedPick<'a> {
    /// Index of the chosen set within the instance / interning order.
    pub set_idx: usize,
    /// Caller label (server id) of the chosen set.
    pub label: u32,
    /// Items this pick newly covers, ascending.
    pub items: &'a [u32],
}

impl<'a> PlannedCover<'a> {
    /// Total items covered.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.buf.covered
    }

    /// Number of picks (transactions in RnB terms).
    #[must_use]
    pub fn num_picks(&self) -> usize {
        self.buf.meta.len()
    }

    /// Iterate the picks in pick order without allocating.
    #[must_use = "the iterator is the computed cover; dropping it discards the plan"]
    pub fn picks(&self) -> impl Iterator<Item = PlannedPick<'a>> + 'a {
        let buf = self.buf;
        let mut start = 0usize;
        buf.meta.iter().map(move |m| {
            let end = m.items_end as usize;
            let pick = PlannedPick {
                set_idx: m.set as usize,
                label: m.label,
                items: &buf.items[start..end],
            };
            start = end;
            pick
        })
    }

    /// Materialise an owned [`CoverSolution`] (allocates; byte-identical
    /// to what [`crate::greedy_cover`] returns for the same input).
    #[must_use]
    pub fn to_solution(&self) -> CoverSolution {
        CoverSolution {
            picks: self
                .picks()
                .map(|p| Pick {
                    set_idx: p.set_idx,
                    label: p.label,
                    items: p.items.to_vec(),
                })
                .collect(),
            covered: self.covered(),
        }
    }
}

/// Reusable greedy cover solver; see the [module docs](self) for the
/// design and [`CoverScratch`] for the pooling lifecycle.
///
/// One `Planner` per planning thread (cluster, client connection, bench
/// loop); it is cheap to construct but only pays off when reused.
#[derive(Debug, Default)]
pub struct Planner {
    scratch: CoverScratch,
    out: PlanBuf,
}

impl Planner {
    /// A planner with empty pools (first request grows them).
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve `inst` and materialise an owned solution — a drop-in,
    /// output-identical replacement for [`crate::greedy_cover`] that
    /// reuses scratch memory across calls.
    #[must_use]
    pub fn plan(&mut self, inst: &CoverInstance, target: CoverTarget) -> CoverSolution {
        self.solve(inst, target).to_solution()
    }

    /// Solve a prebuilt [`CoverInstance`] without allocating, returning a
    /// borrowed view of the picks.
    #[must_use]
    pub fn solve(&mut self, inst: &CoverInstance, target: CoverTarget) -> PlannedCover<'_> {
        let Planner { scratch, out } = self;
        let wps = inst.universe().div_ceil(64);
        scratch.uncovered.clear();
        scratch.uncovered.resize(wps, 0);
        for idx in 0..inst.num_sets() {
            for (u, &w) in scratch.uncovered.iter_mut().zip(inst.set(idx).words()) {
                *u |= w;
            }
        }
        let coverable: usize = scratch
            .uncovered
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        out.reset();
        greedy_rounds_dense(
            inst.num_sets(),
            |s| inst.set(s).words(),
            |s| inst.label(s),
            &mut scratch.uncovered,
            &mut scratch.heap,
            Goal::of(target, coverable),
            out,
        );
        PlannedCover { buf: out }
    }

    /// Solve directly from per-item candidate lists (the natural RnB
    /// direction), skipping [`CoverInstance`] construction entirely.
    ///
    /// Sets are interned in first-appearance order, so the result is
    /// byte-identical to building the instance with
    /// [`CoverInstance::from_item_candidates`] and running
    /// [`crate::greedy_cover`].
    #[must_use]
    pub fn solve_item_candidates(
        &mut self,
        item_candidates: &[Vec<u32>],
        target: CoverTarget,
    ) -> PlannedCover<'_> {
        self.solve_candidates_inner(
            item_candidates.len(),
            |i| item_candidates[i].as_slice(),
            target,
        )
    }

    /// Like [`Planner::solve_item_candidates`] but over a flat candidate
    /// buffer: item `i`'s candidates are
    /// `flat[offsets[i] as usize..offsets[i + 1] as usize]` and the
    /// universe is `offsets.len() - 1`. This is the fully pooled entry
    /// point the bundler uses — caller-side request state can be flat and
    /// reused too.
    #[must_use]
    pub fn solve_flat_candidates(
        &mut self,
        offsets: &[u32],
        flat: &[u32],
        target: CoverTarget,
    ) -> PlannedCover<'_> {
        let universe = offsets.len().saturating_sub(1);
        self.solve_candidates_inner(
            universe,
            |i| &flat[offsets[i] as usize..offsets[i + 1] as usize],
            target,
        )
    }

    /// Convenience: [`Planner::solve_item_candidates`] + owned solution.
    #[must_use]
    pub fn plan_item_candidates(
        &mut self,
        item_candidates: &[Vec<u32>],
        target: CoverTarget,
    ) -> CoverSolution {
        self.solve_item_candidates(item_candidates, target)
            .to_solution()
    }

    #[must_use]
    fn solve_candidates_inner<'c>(
        &mut self,
        universe: usize,
        cand_of: impl Fn(usize) -> &'c [u32],
        target: CoverTarget,
    ) -> PlannedCover<'_> {
        let Planner { scratch, out } = self;
        let CoverScratch {
            interner,
            labels,
            set_words,
            uncovered,
            active,
            heap,
        } = scratch;
        let wps = universe.div_ceil(64);
        interner.begin();
        labels.clear();
        set_words.clear();
        uncovered.clear();
        uncovered.resize(wps, 0);
        let mut coverable = 0usize;
        for item in 0..universe {
            let cands = cand_of(item);
            if cands.is_empty() {
                continue;
            }
            coverable += 1;
            let bit = 1u64 << (item % 64);
            uncovered[item / 64] |= bit;
            for &label in cands {
                let slot = interner.intern(label, labels);
                if (slot + 1) * wps > set_words.len() {
                    // New slot: append one zeroed row (within retained
                    // capacity after warm-up).
                    set_words.resize((slot + 1) * wps, 0);
                }
                set_words[slot * wps + item / 64] |= bit;
            }
        }
        let goal = Goal::of(target, coverable);
        out.reset();
        if wps == 1 {
            // Single-word fast path: uncovered lives in a register and
            // each set is exactly one u64 of the slab.
            let unc = uncovered.first().copied().unwrap_or(0);
            active.clear();
            active.extend(0..labels.len() as u32);
            greedy_rounds_small(set_words, |s| labels[s], unc, active, goal, out);
        } else {
            greedy_rounds_dense(
                labels.len(),
                |s| &set_words[s * wps..(s + 1) * wps],
                |s| labels[s],
                uncovered,
                heap,
                goal,
                out,
            );
        }
        PlannedCover { buf: out }
    }
}

/// Concrete item goal for `target`, given the coverable-item count (the
/// popcount of the union mask) — mirrors [`CoverTarget::resolve`] without
/// touching a [`CoverInstance`].
fn resolve_need(target: CoverTarget, coverable: usize) -> usize {
    match target {
        CoverTarget::Full | CoverTarget::MaxPicks(_) => coverable,
        CoverTarget::AtLeast(k) => k.min(coverable),
    }
}

/// The stopping condition of a greedy run: items to cover and the pick
/// budget, resolved from a [`CoverTarget`].
#[derive(Debug, Clone, Copy)]
struct Goal {
    need: usize,
    budget: usize,
}

impl Goal {
    fn of(target: CoverTarget, coverable: usize) -> Self {
        Goal {
            need: resolve_need(target, coverable),
            budget: target.pick_budget(),
        }
    }
}

/// A lazy-selection heap key: gain in the high 32 bits, the *complement*
/// of the set slot in the low 32. Max-key order therefore prefers higher
/// gain, and on equal gain the lower slot — plain greedy's tie-break.
#[inline]
fn heap_key(gain: usize, slot: u32) -> u64 {
    ((gain as u64) << 32) | u64::from(!slot)
}

/// Restore the max-heap property downward from `i`.
fn sift_down(h: &mut [u64], mut i: usize) {
    loop {
        let left = 2 * i + 1;
        if left >= h.len() {
            break;
        }
        let mut child = left;
        if left + 1 < h.len() && h[left + 1] > h[left] {
            child = left + 1;
        }
        if h[child] <= h[i] {
            break;
        }
        h.swap(i, child);
        i = child;
    }
}

/// Push `key` onto the pooled max-heap.
fn heap_push(h: &mut Vec<u64>, key: u64) {
    h.push(key);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[parent] >= h[i] {
            break;
        }
        h.swap(i, parent);
        i = parent;
    }
}

/// Pop the max key from the pooled heap.
fn heap_pop(h: &mut Vec<u64>) -> Option<u64> {
    let last = h.len().checked_sub(1)?;
    h.swap(0, last);
    let top = h.pop();
    sift_down(h, 0);
    top
}

/// The greedy rounds over multi-word sets. `set_of` yields the word slice
/// of a set slot (from the scratch slab or a [`CoverInstance`]'s bitsets).
///
/// Selection is lazy: the heap holds each set's last-known gain, an upper
/// bound since gains only shrink as items get covered. Pop the max,
/// refresh its gain, and accept only if the refreshed gain matches the
/// bound — then no other set can beat it (their bounds are all ≤ this
/// key), and no lower slot can tie it (an equal-gain lower slot would
/// have sorted above this key). Otherwise reinsert with the fresh gain,
/// or drop the set for good when the gain hits zero.
fn greedy_rounds_dense<'s>(
    num_sets: usize,
    set_of: impl Fn(usize) -> &'s [u64],
    label_of: impl Fn(usize) -> u32,
    uncovered: &mut [u64],
    heap: &mut Vec<u64>,
    goal: Goal,
    out: &mut PlanBuf,
) {
    let Goal { need, budget } = goal;
    let gain_of = |s: usize, uncovered: &[u64]| -> usize {
        set_of(s)
            .iter()
            .zip(uncovered.iter())
            .map(|(w, u)| (w & u).count_ones() as usize)
            .sum()
    };
    heap.clear();
    for s in 0..num_sets {
        // Initial gains are exact (nothing is covered yet), so the first
        // pick needs no refresh detour.
        let gain = gain_of(s, uncovered);
        if gain > 0 {
            heap.push(heap_key(gain, s as u32));
        }
    }
    for i in (0..heap.len() / 2).rev() {
        sift_down(heap, i);
    }
    while out.covered < need && out.meta.len() < budget {
        let Some(top) = heap_pop(heap) else {
            debug_assert!(
                false,
                "planner stalled before target: need is clamped to coverable items"
            );
            break;
        };
        let s = !(top as u32);
        let gain = gain_of(s as usize, uncovered);
        if gain == 0 {
            // Exhausted: never reconsidered (the dense-path skip list).
            continue;
        }
        if (gain as u64) < top >> 32 {
            // Stale bound: reinsert at the refreshed gain and re-pop.
            heap_push(heap, heap_key(gain, s));
            continue;
        }
        let words = set_of(s as usize);
        let before = out.items.len();
        for (w, (u, &sw)) in uncovered.iter_mut().zip(words).enumerate() {
            // Fused pick: newly-covered mask, uncovered update, and item
            // extraction in one pass over the words.
            let newly = sw & *u;
            if newly != 0 {
                *u &= !newly;
                let base = (w * 64) as u32;
                let mut bits = newly;
                while bits != 0 {
                    out.items.push(base + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
        }
        debug_assert_eq!(
            out.items.len() - before,
            gain,
            "fused pick must extract exactly the scanned gain"
        );
        out.covered += gain;
        out.meta.push(PickMeta {
            set: s,
            label: label_of(s as usize),
            items_end: out.items.len() as u32,
        });
    }
}

/// Single-word specialisation of [`greedy_rounds_dense`] for universes of
/// at most 64 items: `masks[slot]` is the whole set and the uncovered mask
/// stays in a register.
fn greedy_rounds_small(
    masks: &[u64],
    label_of: impl Fn(usize) -> u32,
    mut uncovered: u64,
    active: &mut Vec<u32>,
    goal: Goal,
    out: &mut PlanBuf,
) {
    let Goal { need, budget } = goal;
    while out.covered < need && out.meta.len() < budget {
        let mut best: Option<(u32, u32, usize)> = None;
        let mut i = 0;
        while i < active.len() {
            let s = active[i];
            let gain = (masks[s as usize] & uncovered).count_ones();
            if gain == 0 {
                if let Some((_, _, pos)) = &mut best {
                    if *pos == active.len() - 1 {
                        *pos = i;
                    }
                }
                active.swap_remove(i);
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bs, _)) => gain > bg || (gain == bg && s < bs),
            };
            if better {
                best = Some((gain, s, i));
            }
            i += 1;
        }
        let Some((gain, s, pos)) = best else {
            debug_assert!(
                false,
                "planner stalled before target: need is clamped to coverable items"
            );
            break;
        };
        active.swap_remove(pos);
        let newly = masks[s as usize] & uncovered;
        uncovered &= !newly;
        let before = out.items.len();
        let mut bits = newly;
        while bits != 0 {
            out.items.push(bits.trailing_zeros());
            bits &= bits - 1;
        }
        debug_assert_eq!(
            out.items.len() - before,
            gain as usize,
            "fused pick must extract exactly the scanned gain"
        );
        out.covered += gain as usize;
        out.meta.push(PickMeta {
            set: s,
            label: label_of(s as usize),
            items_end: out.items.len() as u32,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_cover_reference, lazy_greedy_cover};
    use proptest::prelude::*;

    fn inst_from(universe: usize, sets: &[&[u32]]) -> CoverInstance {
        let v: Vec<Vec<u32>> = sets.iter().map(|s| s.to_vec()).collect();
        CoverInstance::from_sets(universe, &v)
    }

    fn assert_identical(sol: &CoverSolution, oracle: &CoverSolution) {
        assert_eq!(sol.picks, oracle.picks);
        assert_eq!(sol.covered, oracle.covered);
    }

    #[test]
    fn matches_reference_on_fixed_cases() {
        let cases = vec![
            inst_from(6, &[&[0, 2, 4], &[1, 3, 5], &[0, 1, 2, 3]]),
            inst_from(10, &[&[0, 1, 2, 3], &[4, 5, 6], &[7, 8], &[9], &[0, 9]]),
            inst_from(4, &[&[0, 1], &[2, 3], &[0, 1]]),
            // > 64 items exercises the multi-word dense path.
            inst_from(
                130,
                &[
                    &[0, 64, 129],
                    &[1, 65, 128],
                    &[0, 1, 2, 3],
                    &[127, 128, 129],
                ],
            ),
            CoverInstance::from_sets(0, &[]),
            inst_from(4, &[&[], &[], &[]]),
        ];
        let mut planner = Planner::new();
        for inst in &cases {
            for target in [
                CoverTarget::Full,
                CoverTarget::AtLeast(3),
                CoverTarget::AtLeast(0),
                CoverTarget::MaxPicks(2),
                CoverTarget::MaxPicks(0),
            ] {
                let sol = planner.plan(inst, target);
                assert_identical(&sol, &greedy_cover_reference(inst, target));
                assert!(sol.validate(inst).is_ok());
            }
        }
    }

    #[test]
    fn item_candidates_path_matches_instance_path() {
        let cands: Vec<Vec<u32>> = vec![
            vec![7],
            vec![7, 9],
            vec![9, 3],
            vec![],
            vec![3, 7, 9],
            vec![11],
        ];
        let inst = CoverInstance::from_item_candidates(&cands);
        let mut planner = Planner::new();
        for target in [
            CoverTarget::Full,
            CoverTarget::AtLeast(4),
            CoverTarget::MaxPicks(2),
        ] {
            let via_cands = planner.plan_item_candidates(&cands, target);
            let via_inst = planner.plan(&inst, target);
            assert_identical(&via_cands, &via_inst);
            assert_identical(&via_cands, &greedy_cover_reference(&inst, target));
        }
    }

    #[test]
    fn flat_candidates_path_matches_nested() {
        let cands: Vec<Vec<u32>> = vec![vec![2], vec![2, 5], vec![5], vec![0, 2]];
        let mut offsets = vec![0u32];
        let mut flat = Vec::new();
        for c in &cands {
            flat.extend_from_slice(c);
            offsets.push(flat.len() as u32);
        }
        let mut planner = Planner::new();
        let a = planner
            .solve_flat_candidates(&offsets, &flat, CoverTarget::Full)
            .to_solution();
        let b = planner.plan_item_candidates(&cands, CoverTarget::Full);
        assert_identical(&a, &b);
    }

    /// Reuse across wildly different shapes: shrinking and growing the
    /// universe and label space must not leak state between requests
    /// (epoch bumps + zero-fills do the isolation).
    #[test]
    fn reuse_across_shapes_is_stateless() {
        let mut planner = Planner::new();
        let shapes: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2], vec![2], vec![1]],
            vec![vec![9]],
            (0..100).map(|i| vec![i % 7, (i % 7) + 40]).collect(),
            vec![vec![], vec![]],
            vec![vec![1, 2], vec![2], vec![1]],
        ];
        for cands in &shapes {
            let inst = CoverInstance::from_item_candidates(cands);
            for target in [CoverTarget::Full, CoverTarget::AtLeast(2)] {
                let sol = planner.plan_item_candidates(cands, target);
                assert_identical(&sol, &greedy_cover_reference(&inst, target));
            }
        }
    }

    /// Epoch wrap: after u32::MAX generations the stamps reset. Simulate
    /// by spinning the interner close to the wrap point directly.
    #[test]
    fn interner_epoch_wrap_resets_stamps() {
        let mut interner = LabelInterner::default();
        let mut labels = Vec::new();
        interner.begin();
        assert_eq!(interner.intern(5, &mut labels), 0);
        assert_eq!(interner.intern(3, &mut labels), 1);
        assert_eq!(interner.intern(5, &mut labels), 0);
        assert_eq!(labels, vec![5, 3]);
        // Force the wrap: epoch jumps to u32::MAX, next begin() wraps to 0
        // and must reset rather than treat stale stamps as current.
        interner.epoch = u32::MAX - 1;
        interner.begin(); // epoch == u32::MAX
        labels.clear();
        assert_eq!(interner.intern(5, &mut labels), 0);
        interner.begin(); // wraps: stamps cleared, epoch restarts at 1
        assert_eq!(interner.epoch, 1);
        labels.clear();
        assert_eq!(interner.intern(3, &mut labels), 0);
        assert_eq!(interner.intern(5, &mut labels), 1);
        assert_eq!(labels, vec![3, 5]);
    }

    proptest! {
        /// The satellite guarantee: one reused `Planner` returns
        /// byte-identical `CoverSolution`s to `greedy_cover` (and the seed
        /// reference) across random instances and all `CoverTarget`
        /// variants — both the instance path and the candidates path.
        #[test]
        fn planner_matches_greedy_cover_randomised(
            cands in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 0..5), 0..90),
            limit in 0usize..100,
        ) {
            let inst = CoverInstance::from_item_candidates(&cands);
            let mut planner = Planner::new();
            for target in [
                CoverTarget::Full,
                CoverTarget::AtLeast(limit),
                CoverTarget::MaxPicks(limit / 10),
            ] {
                let oracle = crate::greedy_cover(&inst, target);
                let reference = greedy_cover_reference(&inst, target);
                prop_assert_eq!(&oracle.picks, &reference.picks);
                // Same planner reused for every target and entry point.
                let a = planner.plan(&inst, target);
                let b = planner.plan_item_candidates(&cands, target);
                prop_assert_eq!(&a.picks, &oracle.picks);
                prop_assert_eq!(a.covered, oracle.covered);
                prop_assert_eq!(&b.picks, &oracle.picks);
                prop_assert_eq!(b.covered, oracle.covered);
                prop_assert!(a.validate(&inst).is_ok());
            }
        }

        /// Duplicate-heavy instances force exact gain ties every round, so
        /// the skip list's scrambled scan order must still reproduce the
        /// reference's lowest-index tie-break.
        #[test]
        fn skip_list_preserves_tie_breaks(
            pool in proptest::collection::vec(
                proptest::collection::vec(0u32..24, 1..6), 1..6),
            dups in proptest::collection::vec(0usize..6, 1..8),
        ) {
            let mut sets = pool.clone();
            for &d in &dups {
                sets.push(pool[d % pool.len()].clone());
            }
            let inst = CoverInstance::from_sets(24, &sets);
            let mut planner = Planner::new();
            for target in [CoverTarget::Full, CoverTarget::MaxPicks(3)] {
                let sol = planner.plan(&inst, target);
                let oracle = greedy_cover_reference(&inst, target);
                prop_assert_eq!(&sol.picks, &oracle.picks);
                let lazy = lazy_greedy_cover(&inst, target);
                prop_assert_eq!(&sol.picks, &lazy.picks);
            }
        }

        /// Same torture at a multi-word universe, so the dense path's
        /// lazy-heap selection (not the single-word skip-list scan) must
        /// reproduce the reference tie-breaks through stale-bound pops.
        #[test]
        fn lazy_heap_preserves_tie_breaks_dense(
            pool in proptest::collection::vec(
                proptest::collection::vec(0u32..150, 1..10), 1..8),
            dups in proptest::collection::vec(0usize..8, 1..8),
        ) {
            let mut sets = pool.clone();
            for &d in &dups {
                sets.push(pool[d % pool.len()].clone());
            }
            let inst = CoverInstance::from_sets(150, &sets);
            let mut planner = Planner::new();
            for target in [CoverTarget::Full, CoverTarget::AtLeast(5), CoverTarget::MaxPicks(3)] {
                let sol = planner.plan(&inst, target);
                let oracle = greedy_cover_reference(&inst, target);
                prop_assert_eq!(&sol.picks, &oracle.picks);
                prop_assert_eq!(sol.covered, oracle.covered);
                let lazy = lazy_greedy_cover(&inst, target);
                prop_assert_eq!(&sol.picks, &lazy.picks);
            }
        }
    }
}
