//! Minimum set cover solvers for RnB bundling.
//!
//! In RnB, a client request for `M` items must be fetched from servers,
//! each of which holds a subset of the requested items (the replicas placed
//! there). Choosing the fewest servers that jointly hold all requested
//! items is the classic minimum set cover problem (NP-complete, Karp '72).
//! The paper uses a greedy bit-set heuristic; this crate provides:
//!
//! * [`bitset::BitSet`] — the dense bit-set the heuristic runs on.
//! * [`instance::CoverInstance`] — a cover instance built from per-item
//!   replica lists.
//! * [`greedy`] — the paper's greedy heuristic (largest uncovered gain
//!   first), in plain and lazy-evaluation variants.
//! * [`planner`] — the reusable [`Planner`]: pooled scratch, epoch-stamped
//!   interning, and a fused greedy inner loop, for zero-allocation
//!   steady-state planning on the per-request hot path.
//! * [`exact`] — a branch-and-bound exact solver for small instances, used
//!   to measure the greedy approximation quality.
//! * Partial ("LIMIT") covering — stop once at least `limit` items are
//!   covered (§III-F) — via [`instance::CoverTarget`].

pub mod bitset;
pub mod exact;
pub mod greedy;
pub mod instance;
pub mod planner;

pub use bitset::BitSet;
pub use exact::solve_exact;
pub use greedy::{greedy_cover, greedy_cover_reference, lazy_greedy_cover};
pub use instance::{CoverInstance, CoverSolution, CoverTarget, Pick};
pub use planner::{CoverScratch, PlannedCover, PlannedPick, Planner};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: greedy and exact agree on a case with a known optimum.
    #[test]
    fn crate_level_smoke() {
        // Universe {0..5}; set 0 covers everything, sets 1..6 cover one
        // item each. Optimal and greedy are both a single pick.
        let mut sets = vec![(0..6).collect::<Vec<u32>>()];
        for i in 0..6u32 {
            sets.push(vec![i]);
        }
        let inst = CoverInstance::from_sets(6, &sets);
        let g = greedy_cover(&inst, CoverTarget::Full);
        assert_eq!(g.picks.len(), 1);
        let e = solve_exact(&inst).expect("small instance");
        assert_eq!(e.picks.len(), 1);
    }
}
