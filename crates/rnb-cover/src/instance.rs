//! Cover instances and solutions.

use crate::bitset::BitSet;

/// A set cover instance: a universe of `universe` items (indices
/// `0..universe`) and candidate sets (in RnB, one per server that holds at
/// least one requested item).
#[derive(Clone, Debug)]
pub struct CoverInstance {
    universe: usize,
    sets: Vec<BitSet>,
    /// Caller-meaningful label per set (in RnB the server id). Ordered by
    /// construction: set positions from [`CoverInstance::from_sets`], or
    /// first-appearance order from
    /// [`CoverInstance::from_item_candidates`] (see its label-order
    /// guarantee).
    labels: Vec<u32>,
}

impl CoverInstance {
    /// Build from explicit item-index lists, one per set. Labels default to
    /// the set's position.
    pub fn from_sets(universe: usize, sets: &[Vec<u32>]) -> Self {
        let bitsets = sets
            .iter()
            .map(|s| {
                let mut b = BitSet::new(universe);
                for &i in s {
                    b.set(i as usize);
                }
                b
            })
            .collect::<Vec<_>>();
        let labels = (0..sets.len() as u32).collect();
        CoverInstance {
            universe,
            sets: bitsets,
            labels,
        }
    }

    /// Build from per-item candidate lists: `item_candidates[i]` is the
    /// list of labels (servers) that can supply item `i`. This is the
    /// natural RnB direction: each requested item knows its replica
    /// servers. Only labels that hold at least one item get a set.
    ///
    /// **Label-order guarantee:** sets are created in first-appearance
    /// order — items scanned ascending, candidates within an item in list
    /// order — so `label(idx)` enumerates labels in the order they first
    /// occur in `item_candidates`. The bundler's deterministic transaction
    /// order, the planner's candidate entry points, and this module's
    /// tests all rely on it.
    ///
    /// Interning uses the planner's epoch-stamped flat array (labels are
    /// expected to be small, dense server ids), not a `HashMap`.
    pub fn from_item_candidates(item_candidates: &[Vec<u32>]) -> Self {
        let universe = item_candidates.len();
        let mut interner = crate::planner::LabelInterner::default();
        interner.begin();
        let mut labels: Vec<u32> = Vec::new();
        let mut sets: Vec<BitSet> = Vec::new();
        for (item, cands) in item_candidates.iter().enumerate() {
            for &label in cands {
                let slot = interner.intern(label, &mut labels);
                if slot == sets.len() {
                    sets.push(BitSet::new(universe));
                }
                sets[slot].set(item);
            }
        }
        CoverInstance {
            universe,
            sets,
            labels,
        }
    }

    /// Universe size (number of requested items).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of candidate sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The bitset of set `idx`.
    pub fn set(&self, idx: usize) -> &BitSet {
        &self.sets[idx]
    }

    /// The caller label of set `idx` (the server id in RnB).
    pub fn label(&self, idx: usize) -> u32 {
        self.labels[idx]
    }

    /// True if the union of all sets covers the whole universe.
    pub fn is_coverable(&self) -> bool {
        let mut u = BitSet::new(self.universe);
        for s in &self.sets {
            u.union_with(s);
        }
        u.count_ones() == self.universe
    }

    /// Number of items coverable by at least one set.
    pub fn coverable_items(&self) -> usize {
        let mut u = BitSet::new(self.universe);
        for s in &self.sets {
            u.union_with(s);
        }
        u.count_ones()
    }
}

/// How much of the universe a cover must reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverTarget {
    /// Cover every (coverable) item.
    Full,
    /// Cover at least this many items — the paper's "fetch me at least X
    /// items" LIMIT requests (§III-F). Clamped to the number of coverable
    /// items.
    AtLeast(usize),
    /// Use at most this many sets, covering as much as greedily possible
    /// — the paper's second LIMIT form, "fetch as many items as possible
    /// … within X milliseconds": with per-transaction latency dominating,
    /// a deadline is a transaction budget.
    MaxPicks(usize),
}

impl CoverTarget {
    /// Resolve to a concrete item-count goal for `inst`
    /// ([`CoverTarget::MaxPicks`] resolves to "everything coverable";
    /// its pick budget is enforced by [`CoverTarget::pick_budget`]).
    pub fn resolve(self, inst: &CoverInstance) -> usize {
        let coverable = inst.coverable_items();
        match self {
            CoverTarget::Full | CoverTarget::MaxPicks(_) => coverable,
            CoverTarget::AtLeast(k) => k.min(coverable),
        }
    }

    /// Maximum number of sets a solver may pick under this target.
    pub fn pick_budget(self) -> usize {
        match self {
            CoverTarget::MaxPicks(t) => t,
            _ => usize::MAX,
        }
    }
}

/// One selected set together with the items newly assigned to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pick {
    /// Index of the chosen set within the instance.
    pub set_idx: usize,
    /// Caller label (server id) of the chosen set.
    pub label: u32,
    /// Items this pick is responsible for (newly covered when picked).
    pub items: Vec<u32>,
}

/// A (possibly partial) cover.
#[derive(Clone, Debug, Default)]
pub struct CoverSolution {
    /// Selected sets in pick order. In RnB each pick is one transaction.
    pub picks: Vec<Pick>,
    /// Total items covered.
    pub covered: usize,
}

impl CoverSolution {
    /// Verify this solution against `inst`: picks reference valid,
    /// distinct sets; every assigned item belongs to its set; assignments
    /// are disjoint; and `covered` matches. Returns the covered count.
    #[must_use = "the verdict is the whole point of validating; dropping it checks nothing"]
    pub fn validate(&self, inst: &CoverInstance) -> Result<usize, String> {
        let mut seen_sets = std::collections::HashSet::new();
        let mut covered = BitSet::new(inst.universe());
        for pick in &self.picks {
            if pick.set_idx >= inst.num_sets() {
                return Err(format!(
                    "pick references set {} of {}",
                    pick.set_idx,
                    inst.num_sets()
                ));
            }
            if !seen_sets.insert(pick.set_idx) {
                return Err(format!("set {} picked twice", pick.set_idx));
            }
            if inst.label(pick.set_idx) != pick.label {
                return Err(format!("pick label {} != instance label", pick.label));
            }
            for &item in &pick.items {
                if !inst.set(pick.set_idx).get(item as usize) {
                    return Err(format!("item {item} not in set {}", pick.set_idx));
                }
                if covered.get(item as usize) {
                    return Err(format!("item {item} assigned twice"));
                }
                covered.set(item as usize);
            }
        }
        let n = covered.count_ones();
        if n != self.covered {
            return Err(format!("covered field {} != actual {n}", self.covered));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_item_candidates_inverts_correctly() {
        // items 0,1 on server 7; item 2 on servers 7 and 9.
        let inst = CoverInstance::from_item_candidates(&[vec![7], vec![7], vec![7, 9]]);
        assert_eq!(inst.universe(), 3);
        assert_eq!(inst.num_sets(), 2);
        let s7 = (0..inst.num_sets()).find(|&i| inst.label(i) == 7).unwrap();
        let s9 = (0..inst.num_sets()).find(|&i| inst.label(i) == 9).unwrap();
        assert_eq!(inst.set(s7).to_vec(), vec![0, 1, 2]);
        assert_eq!(inst.set(s9).to_vec(), vec![2]);
        assert!(inst.is_coverable());
    }

    #[test]
    fn uncoverable_detected() {
        let inst = CoverInstance::from_item_candidates(&[vec![1], vec![]]);
        assert!(!inst.is_coverable());
        assert_eq!(inst.coverable_items(), 1);
        assert_eq!(CoverTarget::Full.resolve(&inst), 1);
        assert_eq!(CoverTarget::AtLeast(5).resolve(&inst), 1);
        assert_eq!(CoverTarget::AtLeast(0).resolve(&inst), 0);
    }

    #[test]
    fn validate_catches_bad_solutions() {
        let inst = CoverInstance::from_sets(2, &[vec![0], vec![1]]);
        let ok = CoverSolution {
            picks: vec![
                Pick {
                    set_idx: 0,
                    label: 0,
                    items: vec![0],
                },
                Pick {
                    set_idx: 1,
                    label: 1,
                    items: vec![1],
                },
            ],
            covered: 2,
        };
        assert_eq!(ok.validate(&inst), Ok(2));

        let wrong_item = CoverSolution {
            picks: vec![Pick {
                set_idx: 0,
                label: 0,
                items: vec![1],
            }],
            covered: 1,
        };
        assert!(wrong_item.validate(&inst).is_err());

        let double_pick = CoverSolution {
            picks: vec![
                Pick {
                    set_idx: 0,
                    label: 0,
                    items: vec![0],
                },
                Pick {
                    set_idx: 0,
                    label: 0,
                    items: vec![],
                },
            ],
            covered: 1,
        };
        assert!(double_pick.validate(&inst).is_err());

        let bad_count = CoverSolution {
            picks: vec![Pick {
                set_idx: 0,
                label: 0,
                items: vec![0],
            }],
            covered: 2,
        };
        assert!(bad_count.validate(&inst).is_err());
    }
}
