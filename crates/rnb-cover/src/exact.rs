//! Exact minimum set cover by branch-and-bound, for instances with a
//! universe of at most 128 items.
//!
//! Used to measure the greedy heuristic's approximation quality (the
//! paper argues greedy is near-optimal in the mean for RnB's random
//! placements; `rnb-bench`'s `cover` bench and the property tests in
//! [`crate::greedy`] quantify it).

use crate::instance::{CoverInstance, CoverSolution, CoverTarget, Pick};

/// Largest universe the exact solver accepts.
pub const MAX_EXACT_UNIVERSE: usize = 128;

/// Solve `inst` to optimality. Returns `None` if the universe exceeds
/// [`MAX_EXACT_UNIVERSE`]. Items no set can cover are ignored (matching
/// [`CoverTarget::Full`] semantics).
#[must_use]
pub fn solve_exact(inst: &CoverInstance) -> Option<CoverSolution> {
    if inst.universe() > MAX_EXACT_UNIVERSE {
        return None;
    }
    let masks: Vec<u128> = (0..inst.num_sets())
        .map(|i| inst.set(i).iter_ones().fold(0u128, |m, b| m | (1u128 << b)))
        .collect();
    let coverable: u128 = masks.iter().fold(0, |a, b| a | b);

    // Greedy gives the initial upper bound (and a feasible incumbent).
    let greedy = crate::greedy::greedy_cover(inst, CoverTarget::Full);
    let mut best: Vec<usize> = greedy.picks.iter().map(|p| p.set_idx).collect();

    let max_set_size = masks
        .iter()
        .map(|m| m.count_ones() as usize)
        .max()
        .unwrap_or(0);

    let mut chosen = Vec::new();
    branch(&masks, coverable, max_set_size, &mut chosen, &mut best);

    // Materialise the best selection into a validated solution, assigning
    // each item to the first chosen set that holds it.
    let mut picks = Vec::new();
    let mut remaining = coverable;
    for &idx in &best {
        let newly = masks[idx] & remaining;
        remaining &= !newly;
        picks.push(Pick {
            set_idx: idx,
            label: inst.label(idx),
            items: (0..inst.universe() as u32)
                .filter(|&b| newly >> b & 1 == 1)
                .collect(),
        });
    }
    let covered = (coverable & !remaining).count_ones() as usize;
    Some(CoverSolution { picks, covered })
}

fn branch(
    masks: &[u128],
    uncovered: u128,
    max_set_size: usize,
    chosen: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    if uncovered == 0 {
        if chosen.len() < best.len() {
            *best = chosen.clone();
        }
        return;
    }
    // Lower bound: even perfectly packed sets need this many more picks.
    if max_set_size == 0 {
        return;
    }
    let lb = (uncovered.count_ones() as usize).div_ceil(max_set_size);
    if chosen.len() + lb >= best.len() {
        return;
    }
    // Branch on the uncovered item with the fewest candidate sets — every
    // cover must include one of them, keeping the branching factor minimal.
    let mut branch_item = u32::MAX;
    let mut branch_count = usize::MAX;
    let mut item_bits = uncovered;
    while item_bits != 0 {
        let bit = item_bits.trailing_zeros();
        item_bits &= item_bits - 1;
        let count = masks.iter().filter(|&&m| m >> bit & 1 == 1).count();
        if count < branch_count {
            branch_count = count;
            branch_item = bit;
            if count == 1 {
                break;
            }
        }
    }
    debug_assert_ne!(
        branch_item,
        u32::MAX,
        "uncovered is non-empty here, so some branch item was selected"
    );

    // Try candidate sets in decreasing order of gain for better pruning.
    let mut candidates: Vec<usize> = (0..masks.len())
        .filter(|&i| masks[i] >> branch_item & 1 == 1 && !chosen.contains(&i))
        .collect();
    candidates.sort_by_key(|&i| std::cmp::Reverse((masks[i] & uncovered).count_ones()));

    for idx in candidates {
        chosen.push(idx);
        branch(masks, uncovered & !masks[idx], max_set_size, chosen, best);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_cover;
    use proptest::prelude::*;

    fn inst_from(universe: usize, sets: &[&[u32]]) -> CoverInstance {
        let v: Vec<Vec<u32>> = sets.iter().map(|s| s.to_vec()).collect();
        CoverInstance::from_sets(universe, &v)
    }

    #[test]
    fn finds_known_optimum() {
        // Greedy needs 3 here; the optimum is 2.
        let inst = inst_from(6, &[&[0, 2, 4], &[1, 3, 5], &[0, 1, 2, 3]]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.picks.len(), 2);
        assert_eq!(sol.covered, 6);
        assert!(sol.validate(&inst).is_ok());
    }

    #[test]
    fn single_set_instance() {
        let inst = inst_from(3, &[&[0, 1, 2]]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.picks.len(), 1);
    }

    #[test]
    fn empty_universe() {
        let inst = CoverInstance::from_sets(0, &[]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.picks.len(), 0);
        assert_eq!(sol.covered, 0);
    }

    #[test]
    fn uncoverable_items_ignored() {
        let inst = inst_from(4, &[&[0], &[1]]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.covered, 2);
        assert_eq!(sol.picks.len(), 2);
    }

    #[test]
    fn oversized_universe_refused() {
        let inst = CoverInstance::from_sets(200, &[vec![0]]);
        assert!(solve_exact(&inst).is_none());
    }

    #[test]
    fn disjoint_sets_need_all() {
        let inst = inst_from(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.picks.len(), 3);
    }

    proptest! {
        /// Exact is never worse than greedy, always covers everything
        /// coverable, and validates.
        #[test]
        fn exact_beats_or_matches_greedy(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..16, 1..8), 1..10),
        ) {
            let inst = CoverInstance::from_sets(16, &sets);
            let e = solve_exact(&inst).unwrap();
            let g = greedy_cover(&inst, CoverTarget::Full);
            prop_assert!(e.picks.len() <= g.picks.len());
            prop_assert_eq!(e.covered, inst.coverable_items());
            prop_assert!(e.validate(&inst).is_ok());
        }

        /// Optimality cross-check: no subset of sets smaller than the
        /// exact answer covers the universe (brute force, ≤ 7 sets).
        #[test]
        fn no_smaller_cover_exists(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..6), 1..7),
        ) {
            let inst = CoverInstance::from_sets(10, &sets);
            let e = solve_exact(&inst).unwrap();
            let coverable = inst.coverable_items();
            let n = inst.num_sets();
            for subset in 0u32..(1 << n) {
                if (subset.count_ones() as usize) < e.picks.len() {
                    let mut u = crate::BitSet::new(10);
                    for i in 0..n {
                        if subset >> i & 1 == 1 {
                            u.union_with(inst.set(i));
                        }
                    }
                    prop_assert!(
                        u.count_ones() < coverable,
                        "subset {subset:b} covers with fewer sets than exact"
                    );
                }
            }
        }
    }
}
