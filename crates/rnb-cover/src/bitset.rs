//! A dense, growable bit-set tuned for the cover heuristic's inner loop.
//!
//! The paper (§IV) notes its heuristic "is based on bit-sets, which finds a
//! cover solution using a relatively small number of CPU cycles"; the inner
//! loop here is word-wise AND/ANDNOT plus `popcnt`, exactly that shape.

/// A fixed-universe bit set backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set every bit in the universe.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.trim_tail();
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    fn trim_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// `|self & other|` without allocating.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len, "bitsets must share a universe");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len, "bitsets must share a universe");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len, "bitsets must share a universe");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other` (remove `other`'s bits).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len, "bitsets must share a universe");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share no set bit.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "bitsets must share a universe");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "bitsets must share a universe");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The backing `u64` words, lowest bits first. Bits at or above
    /// [`BitSet::len`] are guaranteed clear (every mutator tail-masks), so
    /// word-wise consumers such as the planner's fused greedy loop can
    /// AND/popcount these directly without re-masking.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Index of the lowest set bit, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect set-bit indices into a `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Build from set-bit indices.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut s = BitSet::new(len);
        for &i in indices {
            s.set(i);
        }
        s
    }
}

/// Iterator over set bits of a [`BitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(129);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(129));
        assert!(!s.get(1) && !s.get(128));
        assert_eq!(s.count_ones(), 4);
        s.clear(64);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn set_all_respects_universe() {
        let mut s = BitSet::new(70);
        s.set_all();
        assert_eq!(s.count_ones(), 70);
        let mut t = BitSet::new(64);
        t.set_all();
        assert_eq!(t.count_ones(), 64);
        let mut u = BitSet::new(0);
        u.set_all();
        assert_eq!(u.count_ones(), 0);
    }

    #[test]
    fn word_ops() {
        let a = BitSet::from_indices(100, &[1, 5, 64, 99]);
        let b = BitSet::from_indices(100, &[5, 64, 70]);
        assert_eq!(a.intersection_count(&b), 2);
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.to_vec(), vec![5, 64]);
        let mut d = a.clone();
        d.union_with(&b);
        assert_eq!(d.to_vec(), vec![1, 5, 64, 70, 99]);
        let mut e = a.clone();
        e.difference_with(&b);
        assert_eq!(e.to_vec(), vec![1, 99]);
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::from_indices(100, &[2]).is_disjoint(&b));
        assert!(c.is_subset(&a) && c.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn first_set_and_iter() {
        let s = BitSet::from_indices(200, &[7, 64, 128, 199]);
        assert_eq!(s.first_set(), Some(7));
        assert_eq!(s.to_vec(), vec![7, 64, 128, 199]);
        assert_eq!(BitSet::new(10).first_set(), None);
        assert_eq!(BitSet::new(0).to_vec(), Vec::<usize>::new());
    }

    proptest! {
        #[test]
        fn roundtrip_indices(mut idx in proptest::collection::vec(0usize..500, 0..50)) {
            idx.sort_unstable();
            idx.dedup();
            let s = BitSet::from_indices(500, &idx);
            prop_assert_eq!(s.to_vec(), idx.clone());
            prop_assert_eq!(s.count_ones(), idx.len());
        }

        #[test]
        fn intersection_count_matches_naive(
            a in proptest::collection::vec(0usize..300, 0..60),
            b in proptest::collection::vec(0usize..300, 0..60),
        ) {
            let sa = BitSet::from_indices(300, &a);
            let sb = BitSet::from_indices(300, &b);
            let naive = sa.to_vec().iter().filter(|i| sb.get(**i)).count();
            prop_assert_eq!(sa.intersection_count(&sb), naive);
        }

        #[test]
        fn difference_then_disjoint(
            a in proptest::collection::vec(0usize..300, 0..60),
            b in proptest::collection::vec(0usize..300, 0..60),
        ) {
            let sa = BitSet::from_indices(300, &a);
            let sb = BitSet::from_indices(300, &b);
            let mut d = sa.clone();
            d.difference_with(&sb);
            prop_assert!(d.is_disjoint(&sb));
            prop_assert!(d.is_subset(&sa));
        }
    }
}
