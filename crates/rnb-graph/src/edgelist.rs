//! Parser for SNAP-style edge lists, the format of the paper's Slashdot
//! and Epinions datasets (`soc-Slashdot0902.txt`, `soc-Epinions1.txt`).
//!
//! Format: `#`-prefixed comment lines, then one `FromNodeId<ws>ToNodeId`
//! pair per line. Node ids may be sparse; they are re-mapped to dense
//! `0..n` in first-appearance order so the rest of the pipeline can use
//! them directly as item ids.

use crate::graph::DiGraph;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A non-comment line that is not two integers.
    Malformed {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line, verbatim.
        line: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line_no, line } => {
                write!(f, "malformed edge at line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse an edge list from any reader. Returns the graph and the mapping
/// from dense id back to the file's original node id.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<(DiGraph, Vec<u64>), ParseError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut dense: HashMap<u64, u32> = HashMap::new();
    let mut original: Vec<u64> = Vec::new();
    let intern = |id: u64, dense: &mut HashMap<u64, u32>, original: &mut Vec<u64>| -> u32 {
        *dense.entry(id).or_insert_with(|| {
            original.push(id);
            (original.len() - 1) as u32
        })
    };

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseError::Malformed {
                line_no: line_no + 1,
                line,
            });
        };
        let (Ok(src), Ok(dst)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(ParseError::Malformed {
                line_no: line_no + 1,
                line,
            });
        };
        let s = intern(src, &mut dense, &mut original);
        let t = intern(dst, &mut dense, &mut original);
        edges.push((s, t));
    }

    Ok((DiGraph::from_edges(original.len(), &edges), original))
}

/// Parse an edge-list file from disk.
pub fn load_edge_list(path: &Path) -> Result<(DiGraph, Vec<u64>), ParseError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

/// Write a graph in SNAP edge-list format (inverse of
/// [`parse_edge_list`]), so generated synthetic datasets can be exported
/// for external tools.
pub fn write_edge_list<W: std::io::Write>(graph: &DiGraph, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# Directed graph: {} nodes {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    writeln!(w, "# FromNodeId\tToNodeId")?;
    for v in 0..graph.num_nodes() as u32 {
        for &t in graph.neighbors(v) {
            writeln!(w, "{v}\t{t}")?;
        }
    }
    Ok(())
}

/// Write a graph to a file in SNAP edge-list format.
pub fn save_edge_list(graph: &DiGraph, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_edge_list(graph, &mut writer)?;
    std::io::Write::flush(&mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "\
# Directed graph (each unordered pair of nodes is saved once)
# Slashdot-style header
# FromNodeId\tToNodeId
0\t4
0\t5
4\t0
7\t0
";
        let (g, original) = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4); // ids 0,4,5,7 densified
        assert_eq!(g.num_edges(), 4);
        assert_eq!(original, vec![0, 4, 5, 7]);
        // dense 0 = original 0, its neighbours are dense ids of 4 and 5.
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn space_separated_and_blank_lines() {
        let text = "1 2\n\n2 3\n";
        let (g, _) = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "# ok\n1\t2\noops\n";
        let err = parse_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseError::Malformed { line_no, .. } => assert_eq!(line_no, 3),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn three_fields_rejected() {
        let err = parse_edge_list("1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn non_numeric_rejected() {
        let err = parse_edge_list("a b\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_edge_list(Path::new("/nonexistent/rnb-test-file.txt")).unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let g = crate::generate::powerlaw_graph(300, 2.0, 1, 40, 1500, 3);
        let mut wire = Vec::new();
        write_edge_list(&g, &mut wire).unwrap();
        let (parsed, original) = parse_edge_list(&wire[..]).unwrap();
        assert_eq!(parsed.num_edges(), g.num_edges());
        // Ids are densified in first-appearance order; map back through
        // `original` to compare adjacency.
        for (dense, &orig) in original.iter().enumerate() {
            let mut expect: Vec<u64> = g.neighbors(orig as u32).iter().map(|&t| t as u64).collect();
            expect.sort_unstable();
            let mut got: Vec<u64> = parsed
                .neighbors(dense as u32)
                .iter()
                .map(|&t| original[t as usize])
                .collect();
            got.sort_unstable();
            assert_eq!(got, expect, "adjacency mismatch for original node {orig}");
        }
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let g = crate::generate::powerlaw_graph(100, 2.0, 1, 20, 400, 4);
        let dir = std::env::temp_dir().join("rnb-edgelist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        save_edge_list(&g, &path).unwrap();
        let (loaded, _) = load_edge_list(&path).unwrap();
        assert_eq!(loaded.num_edges(), g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let (g, original) = parse_edge_list("# only comments\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert!(original.is_empty());
    }
}
