//! Seeded synthetic graph generators.
//!
//! The paper's datasets are heavy-tailed social networks; what its
//! experiments actually consume is the *request-size distribution* (the
//! out-degree distribution) plus uniform-random friend identities. The
//! generators here sample out-degrees from a truncated discrete power law
//! (the canonical social-network degree model — cf. Ugander et al., "The
//! anatomy of the Facebook social graph", which the paper cites) and wire
//! targets uniformly at random.

use crate::graph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample `n` out-degrees from the discrete power law
/// `P(d) ∝ d^-alpha, d ∈ [d_min, d_max]`, then rescale so the total is
/// exactly `target_edges` (multiplicative rescale preserving the tail
/// shape, then ±1 fix-ups).
pub fn powerlaw_degrees(
    n: usize,
    alpha: f64,
    d_min: u32,
    d_max: u32,
    target_edges: usize,
    rng: &mut StdRng,
) -> Vec<u32> {
    assert!(n > 0, "need at least one node");
    assert!(d_min >= 1 && d_min <= d_max, "need 1 <= d_min <= d_max");
    assert!(
        target_edges >= n * d_min as usize && target_edges <= n * d_max as usize,
        "target_edges {target_edges} unreachable with n={n}, d in [{d_min},{d_max}]"
    );

    // Inverse-CDF table over the truncated support.
    let support: Vec<u32> = (d_min..=d_max).collect();
    let weights: Vec<f64> = support.iter().map(|&d| (d as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let mut degrees: Vec<u32> = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            let idx = cdf.partition_point(|&c| c < u).min(support.len() - 1);
            support[idx]
        })
        .collect();

    // Multiplicative rescale toward the target sum.
    let sum: usize = degrees.iter().map(|&d| d as usize).sum();
    if sum != target_edges {
        let scale = target_edges as f64 / sum as f64;
        for d in &mut degrees {
            *d = (((*d as f64) * scale).round() as u32).clamp(d_min, d_max);
        }
    }

    // ±1 fix-ups to land exactly on target_edges.
    let mut sum: isize = degrees.iter().map(|&d| d as isize).sum();
    let target = target_edges as isize;
    while sum != target {
        let i = rng.random_range(0..n);
        if sum > target && degrees[i] > d_min {
            degrees[i] -= 1;
            sum -= 1;
        } else if sum < target && degrees[i] < d_max {
            degrees[i] += 1;
            sum += 1;
        }
    }
    degrees
}

/// Wire a directed graph from an out-degree sequence: each node's
/// `degree[v]` targets are distinct, uniform, and never `v` itself.
pub fn wire_uniform_targets(degrees: &[u32], rng: &mut StdRng) -> DiGraph {
    let n = degrees.len();
    assert!(
        degrees.iter().all(|&d| (d as usize) < n),
        "a node cannot have more distinct neighbours than n-1"
    );
    let total: usize = degrees.iter().map(|&d| d as usize).sum();
    let mut edges = Vec::with_capacity(total);
    let mut chosen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (v, &d) in degrees.iter().enumerate() {
        chosen.clear();
        while chosen.len() < d as usize {
            let t = rng.random_range(0..n as u32);
            if t as usize != v && chosen.insert(t) {
                edges.push((v as u32, t));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// Wire a directed graph where targets are drawn **preferentially**:
/// node `j` is chosen as a friend with probability proportional to its
/// own out-degree. This makes the in-degree distribution heavy-tailed and
/// correlated with out-degree — the shape of real (largely reciprocal)
/// social networks like Slashdot, where popular users are also requested
/// often. Item-popularity skew matters for the memory-limited experiments
/// (Figs 8–10): per-server LRUs exploit it.
pub fn wire_preferential_targets(degrees: &[u32], rng: &mut StdRng) -> DiGraph {
    let n = degrees.len();
    assert!(
        degrees.iter().all(|&d| (d as usize) < n),
        "a node cannot have more distinct neighbours than n-1"
    );
    // Cumulative weights for binary-search sampling; +1 smoothing keeps
    // degree-0 nodes reachable.
    let mut cum: Vec<u64> = Vec::with_capacity(n);
    let mut acc = 0u64;
    for &d in degrees {
        acc += d as u64 + 1;
        cum.push(acc);
    }
    let total = acc;

    let total_edges: usize = degrees.iter().map(|&d| d as usize).sum();
    let mut edges = Vec::with_capacity(total_edges);
    let mut chosen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (v, &d) in degrees.iter().enumerate() {
        chosen.clear();
        let mut attempts = 0usize;
        while chosen.len() < d as usize {
            // Fall back to uniform draws if the weighted draws keep
            // colliding (can happen for very large d).
            let t = if attempts < 20 * d as usize {
                let x = rng.random_range(0..total);
                cum.partition_point(|&c| c <= x) as u32
            } else {
                rng.random_range(0..n as u32)
            };
            attempts += 1;
            if t as usize != v && chosen.insert(t) {
                edges.push((v as u32, t));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// One-call generator: power-law degrees + uniform wiring.
pub fn powerlaw_graph(
    n: usize,
    alpha: f64,
    d_min: u32,
    d_max: u32,
    target_edges: usize,
    seed: u64,
) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let degrees = powerlaw_degrees(n, alpha, d_min, d_max, target_edges, &mut rng);
    wire_uniform_targets(&degrees, &mut rng)
}

/// One-call generator: power-law degrees + preferential wiring (the
/// social-network-shaped variant used by the paper-matched datasets).
pub fn powerlaw_graph_preferential(
    n: usize,
    alpha: f64,
    d_min: u32,
    d_max: u32,
    target_edges: usize,
    seed: u64,
) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let degrees = powerlaw_degrees(n, alpha, d_min, d_max, target_edges, &mut rng);
    wire_preferential_targets(&degrees, &mut rng)
}

/// Uniform-random (Erdős–Rényi-style) directed graph with exactly
/// `edges` distinct, loop-free edges — a light-tailed contrast workload
/// for ablations.
pub fn uniform_graph(n: usize, edges: usize, seed: u64) -> DiGraph {
    assert!(n >= 2, "need at least two nodes for loop-free edges");
    assert!(edges <= n * (n - 1), "too many edges for a simple digraph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::HashSet::with_capacity(edges);
    let mut list = Vec::with_capacity(edges);
    while list.len() < edges {
        let s = rng.random_range(0..n as u32);
        let t = rng.random_range(0..n as u32);
        if s != t && set.insert((s, t)) {
            list.push((s, t));
        }
    }
    DiGraph::from_edges(n, &list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_hit_exact_edge_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let degrees = powerlaw_degrees(1000, 1.8, 1, 200, 8000, &mut rng);
        assert_eq!(degrees.len(), 1000);
        assert_eq!(degrees.iter().map(|&d| d as usize).sum::<usize>(), 8000);
        assert!(degrees.iter().all(|&d| (1..=200).contains(&d)));
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let degrees = powerlaw_degrees(20_000, 1.8, 1, 2000, 200_000, &mut rng);
        // Heavy tail: the max should be far above the mean (10), and
        // degree-1 nodes should be the most common value.
        let max = *degrees.iter().max().unwrap();
        assert!(max > 100, "max degree {max} not heavy-tailed");
        let ones = degrees.iter().filter(|&&d| d == 1).count();
        let mode = {
            let mut counts = std::collections::HashMap::new();
            for &d in &degrees {
                *counts.entry(d).or_insert(0usize) += 1;
            }
            *counts.iter().max_by_key(|(_, c)| **c).unwrap().0
        };
        assert!(ones > degrees.len() / 10, "too few degree-1 nodes: {ones}");
        assert!(mode <= 2, "mode {mode} should sit at the small-degree end");
    }

    #[test]
    fn wiring_respects_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let degrees: Vec<u32> = vec![3, 0, 4, 1, 2];
        let g = wire_uniform_targets(&degrees, &mut rng);
        for (v, &d) in degrees.iter().enumerate() {
            assert_eq!(g.out_degree(v as u32), d as usize, "node {v}");
            assert!(
                !g.neighbors(v as u32).contains(&(v as u32)),
                "self-loop at {v}"
            );
        }
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn full_generator_deterministic() {
        let a = powerlaw_graph(500, 1.8, 1, 100, 3000, 42);
        let b = powerlaw_graph(500, 1.8, 1, 100, 3000, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..500u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        let c = powerlaw_graph(500, 1.8, 1, 100, 3000, 43);
        let same = (0..500u32).all(|v| a.neighbors(v) == c.neighbors(v));
        assert!(!same, "different seeds gave identical graphs");
    }

    #[test]
    fn preferential_wiring_respects_degrees_and_skews_in_degree() {
        let mut rng = StdRng::seed_from_u64(8);
        let degrees = powerlaw_degrees(5000, 1.8, 1, 400, 40_000, &mut rng);
        let g = wire_preferential_targets(&degrees, &mut rng);
        for (v, &d) in degrees.iter().enumerate() {
            assert_eq!(g.out_degree(v as u32), d as usize, "node {v}");
        }
        // In-degree must be far more skewed than uniform wiring's
        // (Poisson with mean 8 ⇒ p99 ≈ 15): preferential attachment gives
        // the popular nodes hundreds of followers.
        let in_deg = g.in_degrees();
        let max_in = *in_deg.iter().max().unwrap();
        assert!(max_in > 60, "in-degree max {max_in} not skewed");
        // And in/out degree are positively correlated: the top-out-degree
        // node should have far more followers than the median node.
        let top_out = (0..5000u32).max_by_key(|&v| g.out_degree(v)).unwrap();
        let mut sorted_in = in_deg.clone();
        sorted_in.sort_unstable();
        let median_in = sorted_in[2500];
        assert!(
            in_deg[top_out as usize] > 4 * median_in.max(1),
            "no in/out correlation: top node has {} followers, median {}",
            in_deg[top_out as usize],
            median_in
        );
    }

    #[test]
    fn uniform_graph_exact_edges() {
        let g = uniform_graph(100, 500, 7);
        assert_eq!(g.num_edges(), 500);
        for v in 0..100u32 {
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn impossible_target_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        powerlaw_degrees(10, 2.0, 1, 5, 1000, &mut rng);
    }

    #[test]
    #[should_panic(expected = "distinct neighbours")]
    fn oversized_degree_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        wire_uniform_targets(&[5], &mut rng);
    }
}
