//! Compact CSR (compressed sparse row) directed graph.

/// A directed graph in CSR form: node ids are dense `0..num_nodes`.
#[derive(Clone, Debug)]
pub struct DiGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`'s
    /// out-neighbours.
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl DiGraph {
    /// Build from an edge list. `num_nodes` must exceed every endpoint.
    /// Self-loops and duplicate edges are removed (the paper's request
    /// generator fetches each friend's item once).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        for &(s, t) in edges {
            assert!(
                (s as usize) < num_nodes && (t as usize) < num_nodes,
                "edge ({s},{t}) out of range for {num_nodes} nodes"
            );
        }
        // Counting sort by source, then per-node sort + dedup of targets.
        let mut counts = vec![0usize; num_nodes + 1];
        for &(s, t) in edges {
            if s != t {
                counts[s as usize + 1] += 1;
            }
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0u32; counts[num_nodes]];
        let mut cursor = counts.clone();
        for &(s, t) in edges {
            if s != t {
                targets[cursor[s as usize]] = t;
                cursor[s as usize] += 1;
            }
        }
        // Sort and dedup each adjacency run, then compact.
        let mut offsets = vec![0usize; num_nodes + 1];
        let mut write = 0usize;
        for v in 0..num_nodes {
            let (start, end) = (counts[v], counts[v + 1]);
            let run = &mut targets[start..end];
            run.sort_unstable();
            let mut prev: Option<u32> = None;
            let mut kept: Vec<u32> = Vec::with_capacity(run.len());
            for &t in run.iter() {
                if prev != Some(t) {
                    kept.push(t);
                    prev = Some(t);
                }
            }
            offsets[v] = write;
            for (i, t) in kept.iter().enumerate() {
                targets[write + i] = *t;
            }
            write += kept.len();
        }
        offsets[num_nodes] = write;
        targets.truncate(write);
        DiGraph { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (deduplicated, loop-free) directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Mean out-degree.
    pub fn avg_out_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_nodes() as u32)
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// In-degrees of all nodes (computed on demand; the request generator
    /// only needs out-degrees).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for &t in &self.targets {
            deg[t as usize] += 1;
        }
        deg
    }

    /// Out-degrees of all nodes.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.num_nodes() as u32)
            .map(|v| self.out_degree(v))
            .collect()
    }

    /// Count of nodes with out-degree zero (users with no friends; the
    /// request generators resample past them).
    pub fn isolated_sources(&self) -> usize {
        (0..self.num_nodes() as u32)
            .filter(|&v| self.out_degree(v) == 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_csr() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (3, 0)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.out_degree(0), 2);
        assert!((g.avg_out_degree() - 1.0).abs() < 1e-12);
        assert_eq!(g.max_out_degree(), 2);
        assert_eq!(g.isolated_sources(), 1);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 0), (2, 0), (2, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn in_degrees() {
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1), (1, 0)]);
        assert_eq!(g.in_degrees(), vec![1, 2, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_out_degree(), 0.0);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge() {
        DiGraph::from_edges(2, &[(0, 5)]);
    }

    proptest! {
        /// CSR construction agrees with a naive adjacency-set build.
        #[test]
        fn matches_naive(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..200)) {
            let g = DiGraph::from_edges(30, &edges);
            let mut naive: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); 30];
            for &(s, t) in &edges {
                if s != t {
                    naive[s as usize].insert(t);
                }
            }
            for v in 0..30u32 {
                let expect: Vec<u32> = naive[v as usize].iter().copied().collect();
                prop_assert_eq!(g.neighbors(v), &expect[..]);
            }
            prop_assert_eq!(g.num_edges(), naive.iter().map(|s| s.len()).sum::<usize>());
        }
    }
}
