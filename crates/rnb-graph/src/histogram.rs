//! Degree histograms — Figs 4–5 of the paper.

use crate::graph::DiGraph;

/// A histogram over node out-degrees.
#[derive(Clone, Debug)]
pub struct DegreeHistogram {
    /// `counts[d]` = number of nodes with out-degree `d`.
    counts: Vec<usize>,
}

impl DegreeHistogram {
    /// Histogram of `graph`'s out-degrees.
    pub fn of_out_degrees(graph: &DiGraph) -> Self {
        Self::from_degrees(graph.out_degrees().into_iter())
    }

    /// Histogram of `graph`'s in-degrees.
    pub fn of_in_degrees(graph: &DiGraph) -> Self {
        Self::from_degrees(graph.in_degrees().into_iter())
    }

    /// Build from any degree iterator.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut counts = Vec::new();
        for d in degrees {
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DegreeHistogram { counts }
    }

    /// Nodes with exactly degree `d`.
    pub fn count(&self, d: usize) -> usize {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Largest degree present.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Total nodes counted.
    pub fn total_nodes(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        let n = self.total_nodes();
        if n == 0 {
            return 0.0;
        }
        let sum: usize = self.counts.iter().enumerate().map(|(d, &c)| d * c).sum();
        sum as f64 / n as f64
    }

    /// The `q`-quantile degree (`q` in `[0, 1]`), by cumulative count.
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.total_nodes();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let mut cum = 0;
        for (d, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return d;
            }
        }
        self.max_degree()
    }

    /// Log2-binned rows `(lo, hi_inclusive, count)` — the presentation
    /// used for heavy-tailed histograms like the paper's Figs 4–5. Bin 0
    /// is degree 0 alone; then \[1,1\], \[2,3\], \[4,7\], ...
    pub fn log2_bins(&self) -> Vec<(usize, usize, usize)> {
        let mut rows = Vec::new();
        if self.counts.is_empty() {
            return rows;
        }
        rows.push((0, 0, self.count(0)));
        let mut lo = 1usize;
        while lo <= self.max_degree() {
            let hi = lo * 2 - 1;
            let count: usize = (lo..=hi.min(self.max_degree()))
                .map(|d| self.count(d))
                .sum();
            rows.push((lo, hi, count));
            lo *= 2;
        }
        rows
    }

    /// Raw per-degree counts (trailing zeros trimmed by construction).
    pub fn raw(&self) -> &[usize] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(degrees: &[usize]) -> DegreeHistogram {
        DegreeHistogram::from_degrees(degrees.iter().copied())
    }

    #[test]
    fn counts_and_mean() {
        let h = hist(&[0, 1, 1, 2, 5]);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.max_degree(), 5);
        assert_eq!(h.total_nodes(), 5);
        assert!((h.mean() - 9.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let h = hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.9), 9);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn log2_bins_cover_everything() {
        let h = hist(&[0, 0, 1, 2, 3, 4, 7, 8, 100]);
        let bins = h.log2_bins();
        assert_eq!(bins[0], (0, 0, 2));
        assert_eq!(bins[1], (1, 1, 1));
        assert_eq!(bins[2], (2, 3, 2));
        assert_eq!(bins[3], (4, 7, 2));
        assert_eq!(bins[4], (8, 15, 1));
        let total: usize = bins.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, h.total_nodes());
    }

    #[test]
    fn graph_roundtrip() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        let h = DegreeHistogram::of_out_degrees(&g);
        assert_eq!(h.count(2), 1); // node 0
        assert_eq!(h.count(1), 1); // node 1
        assert_eq!(h.count(0), 2); // nodes 2, 3
        let hin = DegreeHistogram::of_in_degrees(&g);
        assert_eq!(hin.count(2), 1); // node 2
        assert_eq!(hin.count(0), 2); // nodes 0, 3
    }

    #[test]
    fn empty() {
        let h = hist(&[]);
        assert_eq!(h.total_nodes(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.log2_bins().is_empty());
    }
}
