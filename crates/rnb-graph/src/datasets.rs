//! Paper-matched dataset specifications.
//!
//! The original experiments use two SNAP datasets we cannot ship; these
//! specs generate synthetic stand-ins with the **exact** node and edge
//! counts the paper states and a truncated power-law out-degree
//! distribution whose tail matches the published histograms' shape
//! (Figs 4–5: most users have a handful of friends, a few have thousands).
//! The α exponents were chosen so the *unadjusted* power-law mean lands
//! near the papers' means (11.54 and 6.7); the generator then pins the
//! edge count exactly. See DESIGN.md ("Substitutions").

use crate::generate::powerlaw_graph_preferential;
use crate::graph::DiGraph;

/// A named synthetic dataset recipe.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Human-readable name for tables.
    pub name: &'static str,
    /// Node count (items stored).
    pub nodes: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Power-law exponent for the out-degree distribution.
    pub alpha: f64,
    /// Smallest out-degree sampled.
    pub d_min: u32,
    /// Degree-distribution truncation (≈ the real dataset's max degree).
    pub d_max: u32,
}

impl DatasetSpec {
    /// Instantiate the graph with a seed (deterministic per seed).
    /// Targets are wired preferentially so the in-degree (item
    /// popularity) distribution is heavy-tailed like the real networks'.
    pub fn generate(&self, seed: u64) -> DiGraph {
        powerlaw_graph_preferential(
            self.nodes, self.alpha, self.d_min, self.d_max, self.edges, seed,
        )
    }

    /// Mean out-degree implied by the spec.
    pub fn mean_degree(&self) -> f64 {
        self.edges as f64 / self.nodes as f64
    }

    /// A proportionally scaled-down spec (same mean degree and tail
    /// shape, `factor`× fewer nodes/edges) for fast tests and CI.
    pub fn scaled_down(&self, factor: usize) -> DatasetSpec {
        assert!(factor >= 1);
        DatasetSpec {
            name: self.name,
            nodes: (self.nodes / factor).max(2),
            edges: (self.edges / factor).max(2),
            alpha: self.alpha,
            d_max: self.d_max.min((self.nodes / factor).max(2) as u32 / 2),
            ..*self
        }
    }
}

/// The Slashdot network (paper: 82,168 nodes, 948,464 edges, mean degree
/// 11.54, from Leskovec et al., CHI 2010). `d_min = 2, α = 2.0` puts the
/// truncated power-law mean at ≈11.5 with a median of ~3 — Slashdot users
/// list several friends/foes, so single-friend users are rare (a median
/// of 1 would flood the workload with unbundleable one-item requests and
/// distort the Fig 8–10 relative gains).
pub const SLASHDOT: DatasetSpec = DatasetSpec {
    name: "slashdot",
    nodes: 82_168,
    edges: 948_464,
    alpha: 2.0,
    d_min: 2,
    d_max: 2510,
};

/// The Epinions network (paper: 75,879 nodes, 508,837 edges, mean degree
/// 6.7, from Richardson et al., ISWC 2003).
pub const EPINIONS: DatasetSpec = DatasetSpec {
    name: "epinions",
    nodes: 75_879,
    edges: 508_837,
    alpha: 1.90,
    d_min: 1,
    d_max: 1801,
};

/// Generate the Slashdot-like graph.
pub fn slashdot_like(seed: u64) -> DiGraph {
    SLASHDOT.generate(seed)
}

/// Generate the Epinions-like graph.
pub fn epinions_like(seed: u64) -> DiGraph {
    EPINIONS.generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::DegreeHistogram;

    #[test]
    fn specs_match_paper_counts() {
        assert_eq!(SLASHDOT.nodes, 82_168);
        assert_eq!(SLASHDOT.edges, 948_464);
        assert!((SLASHDOT.mean_degree() - 11.54).abs() < 0.01);
        assert_eq!(EPINIONS.nodes, 75_879);
        assert_eq!(EPINIONS.edges, 508_837);
        assert!((EPINIONS.mean_degree() - 6.706).abs() < 0.01);
    }

    /// Full-size generation is exercised by the figure binaries; tests use
    /// a 10× scale-down with the same distribution parameters.
    #[test]
    fn scaled_slashdot_has_paper_shape() {
        let spec = SLASHDOT.scaled_down(10);
        let g = spec.generate(1);
        assert_eq!(g.num_nodes(), 8_216);
        // Wiring dedup can only remove edges; with d_max << n the loss is
        // negligible.
        assert!(g.num_edges() as f64 >= 0.999 * (spec.edges as f64));
        let mean = g.avg_out_degree();
        assert!((mean - 11.54).abs() < 0.15, "mean degree {mean}");
        // Heavy tail: p99 well above the median.
        let h = DegreeHistogram::of_out_degrees(&g);
        assert!(h.quantile(0.99) as f64 > 8.0 * h.quantile(0.5) as f64);
    }

    #[test]
    fn scaled_epinions_has_paper_shape() {
        let spec = EPINIONS.scaled_down(10);
        let g = spec.generate(2);
        let mean = g.avg_out_degree();
        assert!((mean - 6.7).abs() < 0.15, "mean degree {mean}");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let spec = EPINIONS.scaled_down(50);
        let a = spec.generate(9);
        let b = spec.generate(9);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in (0..a.num_nodes() as u32).step_by(97) {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
