//! Social-graph substrate for the RnB reproduction.
//!
//! The paper drives its simulator with two SNAP social networks — Slashdot
//! (82,168 nodes, 948,464 edges, mean out-degree 11.54) and Epinions
//! (75,879 nodes, 508,837 edges, mean out-degree 6.7) — turning each user
//! into one stored item and each request into "fetch all of a random
//! user's friends". This crate provides:
//!
//! * [`graph::DiGraph`] — a compact CSR directed graph.
//! * [`edgelist`] — a parser for SNAP's `# comment` + `src<TAB>dst` format,
//!   so the real datasets can be dropped in when available.
//! * [`generate`] — seeded synthetic generators; [`datasets`] instantiates
//!   Slashdot-like and Epinions-like graphs with the paper's exact node
//!   and edge counts and a matching heavy-tailed degree histogram (the
//!   documented substitution for the unavailable originals — see
//!   DESIGN.md).
//! * [`histogram`] — degree histograms (Figs 4–5).

pub mod community;
pub mod datasets;
pub mod edgelist;
pub mod generate;
pub mod graph;
pub mod histogram;

pub use datasets::{epinions_like, slashdot_like, DatasetSpec, EPINIONS, SLASHDOT};
pub use graph::DiGraph;
pub use histogram::DegreeHistogram;
