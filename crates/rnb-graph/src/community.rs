//! Community-structured graph generation.
//!
//! Configuration-model graphs (see [`crate::generate`]) have near-zero
//! clustering: two users' friend sets barely overlap, so the only
//! cross-request affinity comes from item popularity. Real social
//! networks have strong community structure — overlapping friend sets —
//! which is exactly the "intrinsic affinity among same-request items"
//! the paper's §III-E discussion of request merging turns on. This module
//! generates graphs with tunable community mixing for the locality
//! ablation (`ext_locality` in `rnb-bench`).

use crate::generate::powerlaw_degrees;
use crate::graph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the community model.
#[derive(Debug, Clone, Copy)]
pub struct CommunitySpec {
    /// Node count.
    pub nodes: usize,
    /// Directed edge count (hit exactly).
    pub edges: usize,
    /// Power-law exponent of the out-degree distribution.
    pub alpha: f64,
    /// Smallest sampled out-degree.
    pub d_min: u32,
    /// Degree truncation.
    pub d_max: u32,
    /// Mean community size (communities are power-law sized around it).
    pub mean_community: usize,
    /// Fraction of each node's edges wired *outside* its community
    /// (0.0 = pure cliques-ish, 1.0 = no community structure).
    pub mixing: f64,
}

impl CommunitySpec {
    /// A Slashdot-shaped community spec at `1/scale` size.
    pub fn slashdot_like(scale: usize, mixing: f64) -> Self {
        let base = crate::datasets::SLASHDOT.scaled_down(scale);
        CommunitySpec {
            nodes: base.nodes,
            edges: base.edges,
            alpha: base.alpha,
            d_min: base.d_min,
            d_max: base.d_max,
            mean_community: 64,
            mixing,
        }
    }

    /// Generate the graph.
    pub fn generate(&self, seed: u64) -> DiGraph {
        assert!((0.0..=1.0).contains(&self.mixing), "mixing out of [0,1]");
        assert!(
            self.mean_community >= 2,
            "communities need at least 2 members"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // 1. Community sizes: power-law-ish around the mean, assigned to
        //    consecutive id ranges (ids carry no meaning).
        let mut boundaries = vec![0usize];
        while *boundaries.last().unwrap() < self.nodes {
            let u: f64 = rng.random();
            // Sizes in [mean/4, 4*mean], density ∝ s^-2 (heavy-ish).
            let lo = (self.mean_community / 4).max(2) as f64;
            let hi = (self.mean_community * 4) as f64;
            let size = (lo * hi / (hi - u * (hi - lo))).round() as usize;
            boundaries.push((boundaries.last().unwrap() + size.max(2)).min(self.nodes));
        }
        let community_of: Vec<u32> = {
            let mut c = vec![0u32; self.nodes];
            for (ci, w) in boundaries.windows(2).enumerate() {
                c[w[0]..w[1]].fill(ci as u32);
            }
            c
        };

        // 2. Degrees, as in the plain generator. A node's distinct-target
        //    requirement is capped by community size only for the
        //    in-community share, which the wiring handles by spilling to
        //    the global pool when a community saturates.
        let degrees = powerlaw_degrees(
            self.nodes, self.alpha, self.d_min, self.d_max, self.edges, &mut rng,
        );

        // 3. Wiring: each edge goes inside the community with probability
        //    1 - mixing (uniform within), otherwise to the global pool
        //    (preferential by degree, as the datasets do).
        let mut cum: Vec<u64> = Vec::with_capacity(self.nodes);
        let mut acc = 0u64;
        for &d in &degrees {
            acc += d as u64 + 1;
            cum.push(acc);
        }
        let total_weight = acc;

        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.edges);
        let mut chosen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (v, &d) in degrees.iter().enumerate() {
            chosen.clear();
            let ci = community_of[v] as usize;
            let (c_lo, c_hi) = (boundaries[ci], boundaries[ci + 1]);
            let c_size = c_hi - c_lo;
            let mut attempts = 0usize;
            while chosen.len() < d as usize {
                attempts += 1;
                let exhausted_community = chosen.len() + 1 >= c_size; // self excluded
                let give_up = attempts > 30 * d as usize;
                let t = if !give_up && !exhausted_community && rng.random::<f64>() >= self.mixing {
                    (c_lo + rng.random_range(0..c_size)) as u32
                } else if !give_up {
                    let x = rng.random_range(0..total_weight);
                    cum.partition_point(|&c| c <= x) as u32
                } else {
                    rng.random_range(0..self.nodes as u32)
                };
                if t as usize != v && chosen.insert(t) {
                    edges.push((v as u32, t));
                }
            }
        }
        DiGraph::from_edges(self.nodes, &edges)
    }
}

/// Mean Jaccard overlap between the friend sets of `pairs` random
/// *adjacent* node pairs (a node and one of its friends) — the triadic
///-closure proxy: in clustered graphs, friends-of-friends are friends, so
/// adjacent ego requests share many items. Used by tests and the
/// locality ablation.
pub fn mean_friendset_overlap(graph: &DiGraph, pairs: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let eligible: Vec<u32> = (0..graph.num_nodes() as u32)
        .filter(|&v| graph.out_degree(v) > 0)
        .collect();
    if eligible.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for _ in 0..pairs {
        let a = eligible[rng.random_range(0..eligible.len())];
        let na = graph.neighbors(a);
        let b = na[rng.random_range(0..na.len())];
        if b == a || graph.out_degree(b) == 0 {
            continue;
        }
        let nb = graph.neighbors(b);
        let inter = na.iter().filter(|x| nb.binary_search(x).is_ok()).count();
        let union = na.len() + nb.len() - inter;
        if union > 0 {
            total += inter as f64 / union as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_shape() {
        let spec = CommunitySpec {
            nodes: 3000,
            edges: 24_000,
            alpha: 2.0,
            d_min: 2,
            d_max: 300,
            mean_community: 40,
            mixing: 0.2,
        };
        let g = spec.generate(1);
        assert_eq!(g.num_nodes(), 3000);
        // Wiring dedup can shave a handful of edges at most.
        assert!(g.num_edges() as f64 > 0.995 * 24_000.0, "{}", g.num_edges());
        assert!((g.avg_out_degree() - 8.0).abs() < 0.2);
    }

    #[test]
    fn low_mixing_builds_overlapping_friend_sets() {
        let overlap_at = |mixing: f64| {
            let spec = CommunitySpec {
                nodes: 2000,
                edges: 16_000,
                alpha: 2.0,
                d_min: 2,
                d_max: 200,
                mean_community: 30,
                mixing,
            };
            mean_friendset_overlap(&spec.generate(7), 4000, 7)
        };
        let clustered = overlap_at(0.1);
        let random = overlap_at(1.0);
        assert!(
            clustered > 3.0 * random.max(1e-4),
            "clustering missing: {clustered} vs {random}"
        );
    }

    #[test]
    fn deterministic() {
        let spec = CommunitySpec::slashdot_like(40, 0.3);
        let a = spec.generate(5);
        let b = spec.generate(5);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in (0..a.num_nodes() as u32).step_by(131) {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn slashdot_like_spec_matches_scale() {
        let spec = CommunitySpec::slashdot_like(10, 0.2);
        assert_eq!(spec.nodes, 8216);
        let g = spec.generate(3);
        assert!((g.avg_out_degree() - 11.5).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "mixing out of")]
    fn bad_mixing_rejected() {
        CommunitySpec::slashdot_like(40, 1.5).generate(0);
    }
}
