//! Streaming summary statistics (Welford's algorithm) and confidence
//! intervals for the Monte-Carlo estimators.

/// Running mean/variance accumulator — numerically stable one-pass
/// (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// (±1.96·SEM; fine for the hundreds-to-thousands of trials the
    /// Monte-Carlo figures use).
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Merge another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
        let mut one = RunningStats::new();
        one.push(3.5);
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95() < small.ci95());
    }

    proptest! {
        /// Welford matches the two-pass formulas.
        #[test]
        fn matches_two_pass(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
            let mut s = RunningStats::new();
            for &x in &xs {
                s.push(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
            prop_assert!((s.variance() - var).abs() < 1e-6 * var.abs().max(1.0));
        }

        /// Merging two accumulators equals accumulating everything.
        #[test]
        fn merge_equals_combined(
            a in proptest::collection::vec(-100f64..100.0, 0..60),
            b in proptest::collection::vec(-100f64..100.0, 0..60),
        ) {
            let mut sa = RunningStats::new();
            let mut sb = RunningStats::new();
            let mut all = RunningStats::new();
            for &x in &a { sa.push(x); all.push(x); }
            for &x in &b { sb.push(x); all.push(x); }
            sa.merge(&sb);
            prop_assert_eq!(sa.count(), all.count());
            prop_assert!((sa.mean() - all.mean()).abs() < 1e-9);
            prop_assert!((sa.variance() - all.variance()).abs() < 1e-6);
        }
    }
}
