//! Urn-model analysis of the multi-get hole (§II-A).
//!
//! Throwing `M` balls (requested items) into `N` urns (servers) uniformly:
//! the probability an urn is non-empty is `W(N, M) = 1 − (1 − 1/N)^M`.
//! The expected number of servers contacted (TPR) is `N·W(N, M)`; TPRPS is
//! `W(N, M)` itself; and the benefit of doubling the cluster is the TPRPS
//! scaling factor `W(N, M) / W(2N, M)` (2 = ideal, →1 = useless).

/// `W(N, M)`: probability a given server receives at least one of `M`
/// uniformly spread items.
///
/// ```
/// use rnb_analysis::urn;
/// // A 16-server cluster serving 50-item requests touches almost
/// // every server on every request:
/// assert!(urn::w(16, 50) > 0.95);
/// // …so doubling it to 32 servers buys well under 1.5x throughput:
/// assert!(urn::doubling_scaling_factor(16, 50) < 1.5);
/// ```
pub fn w(servers: usize, items: usize) -> f64 {
    assert!(servers >= 1, "need at least one server");
    1.0 - (1.0 - 1.0 / servers as f64).powi(items as i32)
}

/// Expected transactions per request for `M` items over `N` servers with
/// no replication.
pub fn tpr(servers: usize, items: usize) -> f64 {
    servers as f64 * w(servers, items)
}

/// Expected transactions per request per server.
pub fn tprps(servers: usize, items: usize) -> f64 {
    w(servers, items)
}

/// TPRPS scaling factor when growing from `servers` to `servers_after`
/// (the paper plots the doubling case). Ideal scaling gives
/// `servers_after / servers`; the multi-get hole pushes it toward 1.
pub fn tprps_scaling(servers: usize, servers_after: usize, items: usize) -> f64 {
    w(servers, items) / w(servers_after, items)
}

/// The Fig 2 quantity: scaling factor for doubling `servers`.
pub fn doubling_scaling_factor(servers: usize, items: usize) -> f64 {
    tprps_scaling(servers, 2 * servers, items)
}

/// Throughput scaling factor of a system of `b` servers relative to one
/// of `a` servers (per-server capacity fixed): each system's throughput is
/// `servers / TPR` in request units, so the factor is
/// `(b / tpr(b, m)) / (a / tpr(a, m)) = tprps(a, m) / tprps(b, m) · (b/a)`…
/// which reduces to the TPRPS ratio when `b = a` — exposed directly:
pub fn throughput_scaling(servers_a: usize, servers_b: usize, items: usize) -> f64 {
    (servers_b as f64 / tpr(servers_b, items)) / (servers_a as f64 / tpr(servers_a, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn w_known_values() {
        // Single server always contacted.
        assert!((w(1, 5) - 1.0).abs() < 1e-12);
        // One item: probability 1/N.
        assert!((w(4, 1) - 0.25).abs() < 1e-12);
        // Zero items: never contacted.
        assert_eq!(w(7, 0), 0.0);
        // Two servers, two items: 1 - (1/2)^2 = 0.75.
        assert!((w(2, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_item_scales_ideally() {
        // Paper: W(N,1)/W(2N,1) = 2 exactly.
        for n in [1usize, 2, 8, 64, 1024] {
            assert!((doubling_scaling_factor(n, 1) - 2.0).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn equal_servers_and_items_gain_about_fifty_percent() {
        // Paper: "Even when the two numbers are equal, doubling the number
        // of servers only increases throughput by some 50%." As N = M
        // grows, the factor tends to (1-e^-1)/(1-e^-1/2) ≈ 1.606.
        let f = doubling_scaling_factor(50, 50);
        assert!((1.45..1.75).contains(&f), "factor {f}");
    }

    #[test]
    fn many_items_scale_terribly() {
        // N << M: nearly every server is hit before and after doubling.
        let f = doubling_scaling_factor(8, 1000);
        assert!(f < 1.01, "factor {f} should be ≈ 1 (no benefit)");
    }

    #[test]
    fn tpr_matches_expected_occupancy() {
        // 100 items on 10 servers: almost every server contacted.
        let t = tpr(10, 100);
        assert!(t > 9.9 && t <= 10.0);
        // M = 1 → exactly one transaction.
        assert!((tpr(10, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_scaling_examples() {
        // One item: throughput scales linearly with servers.
        assert!((throughput_scaling(4, 8, 1) - 2.0).abs() < 1e-9);
        // Huge requests: TPR ≈ N on both sides → no throughput gain.
        let f = throughput_scaling(8, 16, 10_000);
        assert!((f - 1.0).abs() < 0.01, "factor {f}");
    }

    #[test]
    fn tpr_monte_carlo_agreement() {
        // The closed form matches a direct balls-in-urns simulation.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let (n, m, trials) = (16usize, 40usize, 4000);
        let mut total = 0usize;
        for _ in 0..trials {
            let mut hit = vec![false; n];
            for _ in 0..m {
                hit[rng.random_range(0..n)] = true;
            }
            total += hit.iter().filter(|&&h| h).count();
        }
        let simulated = total as f64 / trials as f64;
        let analytic = tpr(n, m);
        assert!(
            (simulated - analytic).abs() < 0.15,
            "simulated {simulated} vs analytic {analytic}"
        );
    }

    proptest! {
        #[test]
        fn w_is_probability_and_monotone(n in 1usize..500, m in 0usize..500) {
            let v = w(n, m);
            prop_assert!((0.0..=1.0).contains(&v));
            // More items → more likely contacted.
            prop_assert!(w(n, m + 1) >= v - 1e-12);
            // More servers → less likely a *given* server is contacted.
            if m >= 1 {
                prop_assert!(w(n + 1, m) <= v + 1e-12);
            }
        }

        #[test]
        fn doubling_factor_bounds(n in 1usize..200, m in 1usize..200) {
            let f = doubling_scaling_factor(n, m);
            prop_assert!(f >= 1.0 - 1e-12, "never hurts: {f}");
            prop_assert!(f <= 2.0 + 1e-12, "never better than ideal: {f}");
        }
    }
}
