//! Aligned text tables and CSV output for the figure regenerators.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title, built row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of display-able values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let head: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", head.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as CSV (header + rows; cells containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float with 3 decimal places (the precision used across the
/// figure outputs).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "value"]);
        t.row(&["1".into(), "10.5".into()]);
        t.row(&["20".into(), "3".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.starts_with("# Demo\n"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1], " n  value");
        assert_eq!(lines[3], " 1   10.5");
        assert_eq!(lines[4], "20      3");
    }

    #[test]
    fn csv_output_and_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["plain".into(), "has,comma".into()]);
        t.row(&["has\"quote".into(), "ok".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",ok");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("rnb-table-test");
        let path = dir.join("nested").join("t.csv");
        let t = sample();
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, t.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn row_display_helper() {
        let mut t = Table::new("d", &["a", "b"]);
        t.row_display(&[&1.5f64, &"x"]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("1.5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
