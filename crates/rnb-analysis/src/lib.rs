//! Analytics for the RnB reproduction.
//!
//! * [`urn`] — the closed-form urn-model results of §II-A: `W(N, M)`,
//!   TPR/TPRPS and the scaling factor behind Fig 2.
//! * [`montecarlo`] — the paper's "simplified simulator" (§III-F): random
//!   placement, no memory limits, greedy (partial) covers — Figs 11–12.
//! * [`calibration`] — the linear per-transaction/per-item cost model
//!   fitted from micro-benchmarks (Appendix, Figs 13–14), which converts a
//!   transaction-size histogram into a throughput estimate (Fig 3).
//! * [`table`] — aligned text tables and CSV output for the figure
//!   binaries in `rnb-bench`.

pub mod calibration;
pub mod montecarlo;
pub mod stats;
pub mod table;
pub mod urn;

pub use calibration::CostModel;
pub use stats::RunningStats;
pub use table::Table;
