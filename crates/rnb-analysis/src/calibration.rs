//! Calibration of simulated transactions to real throughput (Appendix).
//!
//! The paper micro-benchmarks a memcached server with memaslap and finds
//! (Fig 13) that *items fetched per second grows linearly with items per
//! transaction* — i.e. server time per transaction is
//! `t(n) = t_txn + n · t_item` with `t_txn ≫ t_item`. The simulator's
//! transaction-size histogram is then converted into a throughput
//! estimate by summing server work. We reproduce this with a
//! [`CostModel`] fitted by least squares from `(txn_size, items/sec)`
//! measurements of our own `rnb-store` substrate (or the paper-era
//! defaults below).

/// Linear server cost model: a transaction of `n` items takes
/// `txn_overhead_us + n · per_item_us` microseconds of server CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost per transaction, µs.
    pub txn_overhead_us: f64,
    /// Marginal cost per item, µs.
    pub per_item_us: f64,
}

impl CostModel {
    /// Defaults in the ballpark of the paper's 2012 hardware (Core
    /// i7-930, 1 GbE, TCP): ~105k single-item gets/sec saturating toward
    /// ~1.4M items/sec at large transactions — matching Fig 13's shape.
    pub const PAPER_ERA: CostModel = CostModel {
        txn_overhead_us: 8.8,
        per_item_us: 0.7,
    };

    /// Server time (µs) for one transaction of `n` items.
    pub fn txn_time_us(&self, n: usize) -> f64 {
        self.txn_overhead_us + n as f64 * self.per_item_us
    }

    /// Items fetched per second when a server is saturated with
    /// transactions of exactly `n` items (the Fig 13 curve).
    pub fn items_per_sec(&self, n: usize) -> f64 {
        assert!(n > 0, "a get transaction carries at least one item");
        n as f64 * 1e6 / self.txn_time_us(n)
    }

    /// Transactions per second at transaction size `n`.
    pub fn txns_per_sec(&self, n: usize) -> f64 {
        1e6 / self.txn_time_us(n)
    }

    /// Total server CPU time (µs) to serve a transaction-size histogram
    /// (`hist[s]` transactions of `s` items).
    pub fn total_time_us(&self, hist: &[u64]) -> f64 {
        hist.iter()
            .enumerate()
            .map(|(s, &c)| c as f64 * self.txn_time_us(s))
            .sum()
    }

    /// Maximum request throughput (requests/sec) of an `N`-server cluster
    /// that served `requests` requests costing `hist` transactions, under
    /// perfect load balance: the cluster has `N` CPU-seconds per second,
    /// and each request costs `total_time / requests` µs of CPU.
    pub fn cluster_throughput(&self, hist: &[u64], requests: u64, servers: usize) -> f64 {
        assert!(requests > 0, "throughput of zero requests is undefined");
        let us_per_request = self.total_time_us(hist) / requests as f64;
        servers as f64 * 1e6 / us_per_request
    }

    /// Least-squares fit of the linear model from `(txn_size,
    /// items_per_sec)` measurements — how the memaslap-analog results are
    /// turned into a model. Needs ≥ 2 distinct sizes.
    pub fn fit(measurements: &[(usize, f64)]) -> CostModel {
        assert!(
            measurements.len() >= 2,
            "need at least two measurements to fit"
        );
        // items/sec = n / t(n)  ⇒  t(n) = n / ips = a + b·n.
        // Ordinary least squares on (n, t).
        let pts: Vec<(f64, f64)> = measurements
            .iter()
            .map(|&(n, ips)| {
                assert!(n > 0 && ips > 0.0, "measurements must be positive");
                (n as f64, n as f64 * 1e6 / ips)
            })
            .collect();
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        assert!(
            denom.abs() > 1e-9,
            "need at least two distinct transaction sizes"
        );
        let b = (n * sxy - sx * sy) / denom;
        let a = (sy - b * sx) / n;
        CostModel {
            txn_overhead_us: a.max(0.0),
            per_item_us: b.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_shape_linear_then_saturating() {
        let m = CostModel::PAPER_ERA;
        // Small transactions: items/sec nearly linear in n (slope ≈
        // 1/txn_overhead).
        let i1 = m.items_per_sec(1);
        let i2 = m.items_per_sec(2);
        let i10 = m.items_per_sec(10);
        assert!(
            i2 / i1 > 1.8,
            "doubling txn size should almost double items/s"
        );
        assert!(i10 / i1 > 6.0);
        // Large transactions: saturates at 1e6 / per_item.
        let sat = 1e6 / m.per_item_us;
        assert!(m.items_per_sec(10_000) > 0.97 * sat);
        assert!(m.items_per_sec(10_000) < sat);
    }

    #[test]
    fn paper_era_magnitudes() {
        let m = CostModel::PAPER_ERA;
        let single = m.items_per_sec(1);
        assert!(
            (90_000.0..130_000.0).contains(&single),
            "single-get rate {single}"
        );
    }

    #[test]
    fn total_time_and_throughput() {
        let m = CostModel {
            txn_overhead_us: 10.0,
            per_item_us: 1.0,
        };
        // 2 txns of 5 items + 1 txn of 0 items (possible in histograms).
        let hist = vec![1u64, 0, 0, 0, 0, 2];
        assert!((m.total_time_us(&hist) - (10.0 + 2.0 * 15.0)).abs() < 1e-9);
        // 4 requests cost 40 µs total → 10 µs/request → 1 server does
        // 100k req/s, 4 servers do 400k.
        let hist2 = vec![0u64, 4]; // 4 single-item txns
        let t = m.cluster_throughput(&hist2, 4, 4);
        assert!((t - 4.0 * 1e6 / 11.0).abs() < 1.0);
    }

    #[test]
    fn fit_recovers_exact_model() {
        let truth = CostModel {
            txn_overhead_us: 12.5,
            per_item_us: 0.8,
        };
        let samples: Vec<(usize, f64)> = [1, 2, 4, 8, 16, 64, 256]
            .iter()
            .map(|&n| (n, truth.items_per_sec(n)))
            .collect();
        let fitted = CostModel::fit(&samples);
        assert!((fitted.txn_overhead_us - truth.txn_overhead_us).abs() < 1e-6);
        assert!((fitted.per_item_us - truth.per_item_us).abs() < 1e-6);
    }

    #[test]
    fn fit_handles_noise() {
        let truth = CostModel {
            txn_overhead_us: 9.0,
            per_item_us: 0.6,
        };
        // ±2% deterministic "noise".
        let samples: Vec<(usize, f64)> = [1usize, 3, 7, 20, 50, 120]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let noise = if i % 2 == 0 { 1.02 } else { 0.98 };
                (n, truth.items_per_sec(n) * noise)
            })
            .collect();
        let fitted = CostModel::fit(&samples);
        assert!((fitted.txn_overhead_us - 9.0).abs() < 1.5, "{fitted:?}");
        assert!((fitted.per_item_us - 0.6).abs() < 0.2, "{fitted:?}");
    }

    #[test]
    #[should_panic(expected = "two measurements")]
    fn fit_needs_two_points() {
        CostModel::fit(&[(1, 1000.0)]);
    }

    #[test]
    #[should_panic(expected = "distinct transaction sizes")]
    fn fit_needs_distinct_sizes() {
        CostModel::fit(&[(3, 1000.0), (3, 1100.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_item_rate_rejected() {
        CostModel::PAPER_ERA.items_per_sec(0);
    }
}
