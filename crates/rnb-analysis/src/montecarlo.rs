//! The paper's "simplified simulator" (§III-F) behind Figs 11–12.
//!
//! > "The simplified simulator performed Monte Carlo style simulation. It
//! > assumed that the servers have enough memory to completely avoid
//! > misses, and that the set of items in each request is random and
//! > independent of the previous request."
//!
//! Because requests are independent and placement is uniform, item
//! *identities* carry no information — each trial simply draws `k`
//! distinct uniform servers per requested item and runs the greedy
//! (partial) cover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnb_cover::{greedy_cover, CoverInstance, CoverTarget};

/// Parameters of one Monte-Carlo TPR estimate.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Cluster size N.
    pub servers: usize,
    /// Replicas per item k (1 = no replication).
    pub replication: usize,
    /// Items per request M.
    pub request_size: usize,
    /// Fraction of the request that must be fetched (LIMIT X; 1.0 = all).
    pub fetch_fraction: f64,
    /// Trials to average over.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl McConfig {
    /// The per-request minimum item count implied by `fetch_fraction`.
    pub fn min_items(&self) -> usize {
        (self.fetch_fraction * self.request_size as f64).ceil() as usize
    }
}

/// Per-trial TPR statistics under `cfg` (mean, variance, 95% CI).
pub fn tpr_stats(cfg: &McConfig) -> crate::stats::RunningStats {
    assert!(cfg.trials > 0, "need at least one trial");
    assert!(cfg.servers >= 1 && cfg.request_size >= 1);
    assert!(
        (0.0..=1.0).contains(&cfg.fetch_fraction),
        "fetch_fraction {} out of [0,1]",
        cfg.fetch_fraction
    );
    let k = cfg.replication.min(cfg.servers);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let target = CoverTarget::AtLeast(cfg.min_items());

    let mut stats = crate::stats::RunningStats::new();
    let mut scratch: Vec<u32> = Vec::with_capacity(k);
    for _ in 0..cfg.trials {
        let candidates: Vec<Vec<u32>> = (0..cfg.request_size)
            .map(|_| {
                scratch.clear();
                while scratch.len() < k {
                    let s = rng.random_range(0..cfg.servers as u32);
                    if !scratch.contains(&s) {
                        scratch.push(s);
                    }
                }
                scratch.clone()
            })
            .collect();
        let inst = CoverInstance::from_item_candidates(&candidates);
        stats.push(greedy_cover(&inst, target).picks.len() as f64);
    }
    stats
}

/// Estimate the mean TPR under `cfg`.
pub fn average_tpr(cfg: &McConfig) -> f64 {
    tpr_stats(cfg).mean()
}

/// Estimate the mean *fraction of the request fetched* when the client
/// may spend at most `budget` transactions — the paper's second LIMIT
/// form ("fetch as many items as possible … within X milliseconds",
/// §III-F), with the deadline expressed as a transaction budget.
pub fn average_coverage_at_budget(cfg: &McConfig, budget: usize) -> f64 {
    assert!(cfg.trials > 0, "need at least one trial");
    let k = cfg.replication.min(cfg.servers);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let target = CoverTarget::MaxPicks(budget);
    let mut covered = 0usize;
    let mut scratch: Vec<u32> = Vec::with_capacity(k);
    for _ in 0..cfg.trials {
        let candidates: Vec<Vec<u32>> = (0..cfg.request_size)
            .map(|_| {
                scratch.clear();
                while scratch.len() < k {
                    let s = rng.random_range(0..cfg.servers as u32);
                    if !scratch.contains(&s) {
                        scratch.push(s);
                    }
                }
                scratch.clone()
            })
            .collect();
        let inst = CoverInstance::from_item_candidates(&candidates);
        covered += greedy_cover(&inst, target).covered;
    }
    covered as f64 / (cfg.trials * cfg.request_size) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urn;

    fn cfg(servers: usize, replication: usize, m: usize, frac: f64) -> McConfig {
        McConfig {
            servers,
            replication,
            request_size: m,
            fetch_fraction: frac,
            trials: 400,
            seed: 7,
        }
    }

    #[test]
    fn no_replication_full_fetch_matches_urn_model() {
        // k=1, fetch all: TPR is the urn-model occupancy N·W(N,M).
        for (n, m) in [(16usize, 40usize), (8, 10), (32, 100)] {
            let mc = average_tpr(&cfg(n, 1, m, 1.0));
            let analytic = urn::tpr(n, m);
            assert!(
                (mc - analytic).abs() / analytic < 0.05,
                "N={n} M={m}: mc {mc} vs urn {analytic}"
            );
        }
    }

    #[test]
    fn replication_reduces_tpr() {
        let t1 = average_tpr(&cfg(16, 1, 50, 1.0));
        let t2 = average_tpr(&cfg(16, 2, 50, 1.0));
        let t5 = average_tpr(&cfg(16, 5, 50, 1.0));
        assert!(t2 < t1, "{t2} !< {t1}");
        assert!(t5 < t2, "{t5} !< {t2}");
        // Paper (§III-F): "Even with only two replicas, we can reduce the
        // number of transactions down to around 65% of the TPR without
        // RnB" — for LIMIT workloads; full-fetch gains are a bit smaller.
        // Sanity-bound the 5-replica gain instead:
        assert!(
            t5 < 0.6 * t1,
            "5 replicas should cut TPR deeply: {t5} vs {t1}"
        );
    }

    #[test]
    fn limit_reduces_tpr_even_without_replication() {
        // Fig 11's observation.
        let full = average_tpr(&cfg(16, 1, 50, 1.0));
        let p95 = average_tpr(&cfg(16, 1, 50, 0.95));
        let p50 = average_tpr(&cfg(16, 1, 50, 0.5));
        assert!(p95 < full, "{p95} !< {full}");
        assert!(p50 < p95, "{p50} !< {p95}");
    }

    #[test]
    fn limit_and_replication_compound() {
        // Fig 12: replication on top of LIMIT gives a much bigger win.
        let no_rep = average_tpr(&cfg(16, 1, 50, 0.9));
        let five = average_tpr(&cfg(16, 5, 50, 0.9));
        assert!(
            five < 0.45 * no_rep,
            "5 replicas + LIMIT should cut deep: {five} vs {no_rep}"
        );
    }

    #[test]
    fn replication_capped_at_servers() {
        // k > N degrades to k = N and must not panic.
        let t = average_tpr(&McConfig {
            trials: 50,
            ..cfg(4, 10, 20, 1.0)
        });
        assert!(t >= 1.0);
    }

    #[test]
    fn single_server_tpr_is_one() {
        let t = average_tpr(&cfg(1, 1, 30, 1.0));
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = average_tpr(&cfg(16, 3, 40, 0.9));
        let b = average_tpr(&cfg(16, 3, 40, 0.9));
        assert_eq!(a, b);
    }

    #[test]
    fn urn_model_inside_confidence_interval() {
        // The analytic value must fall within the MC estimate's CI
        // (allowing 3x the 95% half-width for a deterministic test).
        let c = McConfig {
            trials: 1500,
            ..cfg(16, 1, 40, 1.0)
        };
        let stats = tpr_stats(&c);
        let analytic = urn::tpr(16, 40);
        assert!(
            (stats.mean() - analytic).abs() <= 3.0 * stats.ci95().max(1e-9),
            "urn {analytic} outside MC CI: {} ± {}",
            stats.mean(),
            stats.ci95()
        );
        assert!(
            stats.ci95() > 0.0 && stats.ci95() < 0.2,
            "CI width {}",
            stats.ci95()
        );
    }

    #[test]
    fn coverage_at_budget_monotone_and_bounded() {
        let c = cfg(16, 3, 50, 1.0);
        let mut last = 0.0;
        for budget in 0..8 {
            let cov = average_coverage_at_budget(&c, budget);
            assert!((0.0..=1.0).contains(&cov));
            assert!(cov >= last - 1e-12, "coverage dropped as budget rose");
            last = cov;
        }
        assert_eq!(average_coverage_at_budget(&c, 0), 0.0);
        assert!((average_coverage_at_budget(&c, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_buys_coverage_per_transaction() {
        // The deadline form's payoff: at a fixed budget, more replicas
        // mean each transaction can carry more of the request.
        let at = |k: usize| average_coverage_at_budget(&cfg(16, k, 50, 1.0), 4);
        let c1 = at(1);
        let c4 = at(4);
        assert!(c4 > 1.25 * c1, "4 replicas at budget 4: {c4} vs {c1}");
    }

    #[test]
    fn zero_fraction_is_zero_tpr() {
        let t = average_tpr(&cfg(16, 2, 30, 0.0));
        assert_eq!(t, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_fraction_rejected() {
        average_tpr(&cfg(4, 1, 5, 1.5));
    }
}
