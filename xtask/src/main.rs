//! `cargo run -p xtask -- <task>` — workspace automation entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(args.iter().any(|a| a == "--json")),
        Some(other) => {
            eprintln!("unknown task {other:?}");
            print_usage();
            ExitCode::FAILURE
        }
        None => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo run -p xtask -- <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint [--json]    run the repo-specific static-analysis rules (R1-R10);");
    eprintln!("                   --json prints machine-readable diagnostics on stdout");
}

fn run_lint(json: bool) -> ExitCode {
    let root = xtask::workspace_root();
    match xtask::lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else if report.violations.is_empty() {
                println!(
                    "lint clean: {} files checked against R1-R10 (panic-freedom \
                     textual and transitive, deterministic simulation, lossless \
                     wire casts, invariant inventory, no-sleep discipline, \
                     doc-example coverage, serving-path allocation, must-use \
                     planners, lock discipline); {} ambiguous call(s) \
                     over-approximated",
                    report.files_scanned, report.ambiguous_calls
                );
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!(
                    "\nlint: {} violation(s) across {} files",
                    report.violations.len(),
                    report.files_scanned
                );
            }
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("lint: failed to scan workspace: {err}");
            ExitCode::FAILURE
        }
    }
}
