//! `cargo run -p xtask -- <task>` — workspace automation entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown task {other:?}");
            print_usage();
            ExitCode::FAILURE
        }
        None => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo run -p xtask -- <task>");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint    run the repo-specific static-analysis rules (R1-R6)");
}

fn run_lint() -> ExitCode {
    let root = xtask::workspace_root();
    match xtask::lint_workspace(&root) {
        Ok(report) if report.violations.is_empty() => {
            println!(
                "lint clean: {} files checked against R1-R6 (serving-path \
                 panic-freedom, deterministic simulation, lossless wire casts, \
                 invariant inventory, no-sleep discipline, doc-example \
                 coverage)",
                report.files_scanned
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for v in &report.violations {
                eprintln!("{v}");
            }
            eprintln!(
                "\nlint: {} violation(s) across {} files",
                report.violations.len(),
                report.files_scanned
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("lint: failed to scan workspace: {err}");
            ExitCode::FAILURE
        }
    }
}
