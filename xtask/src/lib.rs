//! Workspace automation for the RnB reproduction.
//!
//! The one task so far is `lint`: a repo-specific static-analysis pass
//! enforcing rules that rustc and clippy cannot express (see
//! [`rules`] for the catalogue R1–R10; R7–R10 work over the approximate
//! call graph built by [`lexer`]/[`items`]/[`callgraph`]). It is wired
//! in three places so it cannot be forgotten:
//!
//! * `cargo run -p xtask -- lint` — the developer entry point,
//! * `tests/lint_clean.rs` — tier-1 (`cargo test -q`) runs it forever,
//! * `.github/workflows/ci.yml` — CI runs the binary form.
//!
//! Everything is std-only: the build environment may have no crates.io
//! registry at all (see "Offline builds" in README.md).

pub mod callgraph;
pub mod inventory;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod scrub;

use inventory::Inventory;
use rules::{InvariantSite, Violation};
use scrub::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root, derived from xtask's own manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Directories never walked: build output, VCS metadata, and the vendored
/// stand-ins for external crates (`vendor/` emulates third-party code —
/// e.g. the criterion stand-in legitimately reads wall-clock time).
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor"];

/// Collect every workspace `.rs` file under `root`, sorted by path.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    paths
        .into_iter()
        .map(|(rel, abs)| Ok(SourceFile::new(rel, fs::read_to_string(abs)?)))
        .collect()
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// The outcome of a full lint pass.
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Call sites the call-graph resolver could not pin to a single
    /// function (edges go to every candidate; see [`callgraph`]).
    pub ambiguous_calls: usize,
    /// All findings, sorted by file and line.
    pub violations: Vec<Violation>,
}

impl LintReport {
    /// Machine-readable form for `lint --json`: one object with
    /// `files_scanned`, `ambiguous_calls`, and a `violations` array of
    /// `{rule, file, line, message}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"files_scanned\":{},\"ambiguous_calls\":{},\"violations\":[",
            self.files_scanned, self.ambiguous_calls
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_string(v.rule),
                json_string(&v.file),
                v.line,
                json_string(&v.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escape `s` as a JSON string literal (std-only, no serde available).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run every rule over the workspace rooted at `root`.
///
/// `root` must contain `INVARIANTS.md`; a missing or malformed inventory
/// is itself reported as a violation rather than an error, so the lint
/// always produces a report.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = collect_sources(root)?;
    let mut violations = Vec::new();

    let inventory = match fs::read_to_string(root.join("INVARIANTS.md")) {
        Ok(text) => match Inventory::parse(&text) {
            Ok(inv) => inv,
            Err(msg) => {
                violations.push(Violation {
                    rule: "R4/invariant-inventory",
                    file: "INVARIANTS.md".into(),
                    line: 0,
                    message: msg,
                });
                Inventory::default()
            }
        },
        Err(err) => {
            violations.push(Violation {
                rule: "R4/invariant-inventory",
                file: "INVARIANTS.md".into(),
                line: 0,
                message: format!("cannot read the invariant inventory: {err}"),
            });
            Inventory::default()
        }
    };

    let mut sites: Vec<InvariantSite> = Vec::new();
    for file in &files {
        violations.extend(rules::check_panic_free(file));
        violations.extend(rules::check_determinism(file));
        violations.extend(rules::check_wire_casts(file));
        violations.extend(rules::check_no_sleep(file));
        violations.extend(rules::check_doc_examples(file));
        let (file_sites, missing_msgs) = rules::collect_invariant_sites(file);
        sites.extend(file_sites);
        violations.extend(missing_msgs);
    }
    violations.extend(rules::check_stale_allowlist(&files));
    violations.extend(rules::check_stale_sleep_allowlist(&files));
    violations.extend(rules::check_stale_doc_allowlist(&files));
    violations.extend(rules::check_inventory(&sites, &inventory));

    // The call-graph rules (R7–R10) and the registry self-check (R0).
    let graph = callgraph::CallGraph::build(&files);
    violations.extend(rules::check_serving_clone(&files, &graph));
    violations.extend(rules::check_must_use(&files, &graph));
    violations.extend(rules::check_transitive_panic(&files, &graph));
    violations.extend(rules::check_lock_discipline(&files, &graph));
    violations.extend(rules::self_check());

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport {
        files_scanned: files.len(),
        ambiguous_calls: graph.ambiguities.len(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full pass over this very repository must be clean — the same
    /// check tier-1 runs via tests/lint_clean.rs, duplicated here so
    /// `cargo test -p xtask` alone also catches regressions.
    #[test]
    fn workspace_is_lint_clean() {
        let report = lint_workspace(&workspace_root()).expect("lint pass runs");
        assert!(
            report.violations.is_empty(),
            "workspace lint violations:\n{}",
            report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.files_scanned > 50,
            "suspiciously few files scanned ({}): is the walk broken?",
            report.files_scanned
        );
    }

    #[test]
    fn json_report_escapes_special_characters() {
        let report = LintReport {
            files_scanned: 2,
            ambiguous_calls: 1,
            violations: vec![Violation {
                rule: "R7/serving-path-clone",
                file: "crates/x/src/a.rs".into(),
                line: 3,
                message: "quote \" backslash \\ tab \t newline \n done".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"files_scanned\":2,\"ambiguous_calls\":1,"));
        assert!(json.contains("\"rule\":\"R7/serving-path-clone\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains(r#"quote \" backslash \\ tab \t newline \n done"#));
        assert!(
            !json.contains('\n'),
            "raw control characters must be escaped"
        );
    }

    #[test]
    fn json_of_a_clean_report_is_flat() {
        let report = LintReport {
            files_scanned: 7,
            ambiguous_calls: 0,
            violations: Vec::new(),
        };
        assert_eq!(
            report.to_json(),
            "{\"files_scanned\":7,\"ambiguous_calls\":0,\"violations\":[]}"
        );
    }

    #[test]
    fn collect_sources_skips_vendor_and_target() {
        let files = collect_sources(&workspace_root()).expect("walk succeeds");
        assert!(files.iter().all(|f| !f.rel_path.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.rel_path.starts_with("target/")));
        assert!(files.iter().any(|f| f.rel_path.starts_with("crates/")));
        assert!(files.iter().any(|f| f.rel_path.starts_with("xtask/")));
    }
}
