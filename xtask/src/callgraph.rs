//! An approximate intra-workspace call graph.
//!
//! Nodes are the non-test `fn` items of `crates/*/src/**` ([`crate::items`]);
//! edges come from syntactic call sites (`name(…)`, `recv.name(…)`,
//! `Path::name(…)`, turbofish included) resolved by *name suffix match*:
//!
//! * an unqualified call resolves to same-named **free** functions,
//! * a method call (`.name(…)`) to same-named **methods**,
//! * a qualified call (`A::B::name(…)`) to items whose reversed path
//!   (`Self` type, modules, crate) contains the reversed qualifier as a
//!   subsequence,
//!
//! in each case restricted to the caller's crate and the workspace crates
//! it (transitively) mentions. Calls that resolve to nothing are external
//! (std / vendored) and ignored; calls that resolve to several candidates
//! are recorded on the [`CallGraph::ambiguities`] list and draw an edge to
//! **every** candidate — the analysis over-approximates rather than
//! guessing, and the list keeps it honest about how often that happens.
//!
//! Known blind spots (also documented in README "Static analysis"):
//! `<T as Trait>::f(…)` qualified paths, function pointers/closures passed
//! as values, and macro-generated code are not traced.

use crate::items::{crate_of, scan_file, FnItem};
use crate::lexer::{TokKind, Token};
use crate::scrub::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One call site that resolved to more than one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// Index (into [`CallGraph::fns`]) of the calling function.
    pub caller: usize,
    /// The callee name as written at the call site.
    pub callee: String,
    /// How many candidates the suffix match produced.
    pub candidates: usize,
}

/// The assembled graph.
pub struct CallGraph {
    /// All non-test `fn` items of `crates/*/src/**`, in file order.
    pub fns: Vec<FnItem>,
    /// `edges[i]` lists the indices `i` may call (deduplicated, sorted).
    pub edges: Vec<Vec<usize>>,
    /// Call sites the resolver could not pin to a single function.
    pub ambiguities: Vec<Ambiguity>,
}

/// Rust keywords (and primitive-ish words) never treated as callee names.
const NON_CALLEES: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "mut", "ref", "where", "unsafe", "async", "await", "dyn", "impl", "fn", "pub",
    "use", "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super", "box",
];

impl CallGraph {
    /// Build the graph over `files` (non-`crates/*/src` files are ignored).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        // Scan items and keep per-file token streams for call extraction.
        let mut fns: Vec<FnItem> = Vec::new();
        let mut tokens_by_file: BTreeMap<&str, Vec<Token>> = BTreeMap::new();
        let mut scrub_by_file: BTreeMap<&str, &str> = BTreeMap::new();
        for file in files {
            if crate_of(&file.rel_path).is_none() {
                continue;
            }
            let scanned = scan_file(file);
            tokens_by_file.insert(&file.rel_path, scanned.tokens);
            scrub_by_file.insert(&file.rel_path, &file.scrubbed);
            fns.extend(scanned.fns.into_iter().filter(|f| !f.is_test));
        }

        let scope_by_crate = crate_scopes(files);

        // Name → candidate indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut ambiguities = Vec::new();
        for i in 0..fns.len() {
            let Some((body_start, body_end)) = fns[i].body else {
                continue;
            };
            let toks = &tokens_by_file[fns[i].file.as_str()];
            let s = scrub_by_file[fns[i].file.as_str()];
            let empty = BTreeSet::new();
            let scope = fns[i]
                .crate_name
                .as_deref()
                .and_then(|c| scope_by_crate.get(c))
                .unwrap_or(&empty);
            for site in call_sites(toks, s, body_start, body_end) {
                let cands = resolve(&site, &fns[i], scope, &by_name, &fns);
                if cands.len() > 1 {
                    ambiguities.push(Ambiguity {
                        caller: i,
                        callee: site.name.clone(),
                        candidates: cands.len(),
                    });
                }
                edges[i].extend(cands);
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }
        CallGraph {
            fns,
            edges,
            ambiguities,
        }
    }

    /// BFS closure from `roots`, each a `(rel_path, fn_name)` pair.
    /// Returns the reachable node set and the roots that matched nothing
    /// (a missing root means a rename silently disabled the rule, so
    /// callers report it as a violation).
    pub fn reachable(&self, roots: &[(&str, &str)]) -> (BTreeSet<usize>, Vec<(String, String)>) {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        let mut missing = Vec::new();
        for (file, name) in roots {
            let mut hit = false;
            for (i, f) in self.fns.iter().enumerate() {
                if f.file == *file && f.name == *name {
                    hit = true;
                    if seen.insert(i) {
                        queue.push_back(i);
                    }
                }
            }
            if !hit {
                missing.push(((*file).to_string(), (*name).to_string()));
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if seen.insert(j) {
                    queue.push_back(j);
                }
            }
        }
        (seen, missing)
    }

    /// The node at `(file, name)` whose body span contains `offset`,
    /// for attributing a finding to its enclosing function.
    pub fn enclosing_fn(&self, file: &str, offset: usize) -> Option<&FnItem> {
        // Prefer the innermost (latest-starting) containing body: nested
        // fns appear after their parent in scan order.
        self.fns
            .iter()
            .filter(|f| f.file == file)
            .filter(|f| f.body.is_some_and(|(s, e)| (s..e).contains(&offset)))
            .max_by_key(|f| f.body.map(|(s, _)| s))
    }
}

/// One syntactic call site inside a function body.
struct CallSite {
    /// Callee identifier as written.
    name: String,
    /// Qualifier path segments, **innermost first** (`a::b::f` → `[b, a]`).
    rev_qualifier: Vec<String>,
    /// True for `.name(…)` receiver calls.
    is_method: bool,
}

/// Extract the call sites between byte offsets `start..end`.
fn call_sites(toks: &[Token], s: &str, start: usize, end: usize) -> Vec<CallSite> {
    let lo = toks.partition_point(|t| t.start < start);
    let hi = toks.partition_point(|t| t.start < end);
    let mut out = Vec::new();
    for k in lo..hi {
        let t = toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(s);
        if NON_CALLEES.contains(&name) {
            continue;
        }
        // A call: the name is followed by `(`, optionally with a
        // `::<…>` turbofish in between.
        let mut m = k + 1;
        if is_path_sep(toks, m) && toks.get(m + 2).is_some_and(|t| t.is_punct(b'<')) {
            match skip_angle_group(toks, m + 2) {
                Some(past) => m = past,
                None => continue,
            }
        }
        if !toks.get(m).is_some_and(|t| t.is_punct(b'(')) {
            continue;
        }
        // Not a call: macro (`name!`), definition (`fn name`).
        if toks.get(k + 1).is_some_and(|t| t.is_punct(b'!')) {
            continue;
        }
        if k > 0 && toks[k - 1].is_ident(s, "fn") {
            continue;
        }
        // Collect the leading path qualifier, innermost segment first.
        let mut rev_qualifier = Vec::new();
        let mut p = k;
        while p >= 3 && is_path_sep(toks, p - 2) && toks[p - 3].kind == TokKind::Ident {
            rev_qualifier.push(toks[p - 3].text(s).to_string());
            p -= 3;
        }
        let is_method = rev_qualifier.is_empty() && p > 0 && toks[p - 1].is_punct(b'.');
        out.push(CallSite {
            name: name.to_string(),
            rev_qualifier,
            is_method,
        });
    }
    out
}

/// Are tokens `m`,`m+1` an adjacent `::`?
fn is_path_sep(toks: &[Token], m: usize) -> bool {
    toks.get(m).is_some_and(|t| t.is_punct(b':'))
        && toks.get(m + 1).is_some_and(|t| t.is_punct(b':'))
        && toks[m].end == toks[m + 1].start
}

/// Skip a balanced `<…>` group at token index `open`; returns the index
/// just past the closing `>` (arrows `->`/`=>` are not brackets).
fn skip_angle_group(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let arrow_tail = j > 0
            && matches!(
                toks[j - 1].kind,
                TokKind::Punct(b'-') | TokKind::Punct(b'=')
            )
            && toks[j - 1].end == toks[j].start;
        match toks[j].kind {
            TokKind::Punct(b'<') if !arrow_tail => depth += 1,
            TokKind::Punct(b'>') if !arrow_tail => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            // A `;` or `{` inside a turbofish means this `<` was a
            // comparison, not a bracket; give up on the group.
            TokKind::Punct(b';') | TokKind::Punct(b'{') => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Which workspace crates each crate may call into: itself plus every
/// crate whose (underscored) name appears as an identifier anywhere in
/// its sources, transitively. Scoping resolution this way keeps, say,
/// `rnb-sim` method names from polluting the `rnb-store` graph.
fn crate_scopes(files: &[SourceFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut crates: BTreeSet<String> = BTreeSet::new();
    for file in files {
        if let Some(c) = crate_of(&file.rel_path) {
            crates.insert(c);
        }
    }
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        let Some(owner) = crate_of(&file.rel_path) else {
            continue;
        };
        let deps = direct.entry(owner.clone()).or_default();
        for name in &crates {
            if *name != owner && mentions_ident(&file.scrubbed, name) {
                deps.insert(name.clone());
            }
        }
    }
    let mut out = BTreeMap::new();
    for c in &crates {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue = VecDeque::from([c.clone()]);
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(deps) = direct.get(&cur) {
                queue.extend(deps.iter().cloned());
            }
        }
        out.insert(c.clone(), seen);
    }
    out
}

/// Does `word` occur in `text` with non-identifier characters (or text
/// boundaries) on both sides?
fn mentions_ident(text: &str, word: &str) -> bool {
    let b = text.as_bytes();
    let mut search = 0;
    while let Some(found) = text[search..].find(word) {
        let at = search + found;
        search = at + 1;
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let end = at + word.len();
        let right_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
    }
    false
}

/// Resolve one call site to candidate node indices.
fn resolve(
    site: &CallSite,
    caller: &FnItem,
    scope: &BTreeSet<String>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnItem],
) -> Vec<usize> {
    let Some(all) = by_name.get(site.name.as_str()) else {
        return Vec::new();
    };
    all.iter()
        .copied()
        .filter(|&i| {
            let cand = &fns[i];
            let in_scope = cand
                .crate_name
                .as_deref()
                .is_some_and(|c| scope.contains(c));
            if !in_scope {
                return false;
            }
            if site.is_method {
                return cand.self_ty.is_some();
            }
            if site.rev_qualifier.is_empty() {
                // Unqualified call: only free functions are in scope
                // (methods need a receiver or a path).
                return cand.self_ty.is_none();
            }
            qualifier_matches(&site.rev_qualifier, caller, cand)
        })
        .collect()
}

/// Does the written qualifier (innermost first) match the candidate's
/// reversed path (`Self` type, then modules innermost-first, then crate)
/// as a subsequence? `crate`/`self`/`super` segments are positionless and
/// skipped; `Self` resolves to the caller's `impl` type.
fn qualifier_matches(rev_qualifier: &[String], caller: &FnItem, cand: &FnItem) -> bool {
    let mut rev_path: Vec<&str> = Vec::new();
    if let Some(ty) = &cand.self_ty {
        rev_path.push(ty);
    }
    rev_path.extend(cand.module_path.iter().rev().map(String::as_str));
    if let Some(c) = &cand.crate_name {
        rev_path.push(c);
    }
    let mut path_iter = rev_path.iter();
    for seg in rev_qualifier {
        let seg: &str = match seg.as_str() {
            "crate" | "self" | "super" => continue,
            "Self" => match &caller.self_ty {
                Some(ty) => ty,
                None => return false,
            },
            s => s,
        };
        if !path_iter.any(|p| *p == seg) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(*p, *s)).collect();
        CallGraph::build(&files)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .expect("fn exists")
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let g = graph(&[(
            "crates/rnb-store/src/a.rs",
            "fn root() { middle(); }\n\
             fn middle() { leaf(); }\n\
             fn leaf() {}\n\
             fn unrelated() {}\n",
        )]);
        let (reach, missing) = g.reachable(&[("crates/rnb-store/src/a.rs", "root")]);
        assert!(missing.is_empty());
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert_eq!(names, ["root", "middle", "leaf"]);
    }

    #[test]
    fn method_calls_resolve_to_methods_only() {
        let g = graph(&[(
            "crates/rnb-store/src/a.rs",
            "struct S;\n\
             impl S { fn go(&self) {} }\n\
             fn go() {}\n\
             fn calls_method(s: &S) { s.go(); }\n\
             fn calls_free() { go(); }\n",
        )]);
        let method = idx(&g, "go");
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/a.rs", "calls_method")]);
        assert!(reach.contains(&method), "method edge");
        assert!(
            !reach
                .iter()
                .any(|&i| g.fns[i].name == "go" && g.fns[i].self_ty.is_none()),
            "method call must not reach the free fn"
        );
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/a.rs", "calls_free")]);
        assert!(reach
            .iter()
            .any(|&i| g.fns[i].name == "go" && g.fns[i].self_ty.is_none()));
        assert!(!reach.iter().any(|&i| g.fns[i].self_ty.is_some()));
    }

    #[test]
    fn qualified_calls_suffix_match_modules_and_self() {
        let g = graph(&[
            (
                "crates/rnb-store/src/shard.rs",
                "pub fn key_hash(k: &[u8]) -> u64 { 0 }\n",
            ),
            (
                "crates/rnb-store/src/store.rs",
                "struct Store;\n\
                 impl Store {\n\
                 \u{20}   fn new() -> Self { Store }\n\
                 \u{20}   fn lookup(&self) { crate::shard::key_hash(b\"k\"); }\n\
                 \u{20}   fn fresh() { Self::new(); }\n\
                 }\n",
            ),
        ]);
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/store.rs", "lookup")]);
        assert!(
            reach.contains(&idx(&g, "key_hash")),
            "module-qualified call"
        );
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/store.rs", "fresh")]);
        assert!(reach.contains(&idx(&g, "new")), "Self-qualified call");
    }

    #[test]
    fn cross_crate_calls_respect_dependency_scope() {
        let files = [
            (
                "crates/rnb-client/src/client.rs",
                "use rnb_core::plan;\nfn multi_get() { plan(); }\n",
            ),
            ("crates/rnb-core/src/lib.rs", "pub fn plan() {}\n"),
            // rnb-sim also has a `plan`, but rnb-client never mentions
            // rnb_sim, so it stays out of scope.
            ("crates/rnb-sim/src/lib.rs", "pub fn plan() {}\n"),
        ];
        let g = graph(&files);
        let (reach, _) = g.reachable(&[("crates/rnb-client/src/client.rs", "multi_get")]);
        let reached: Vec<&str> = reach
            .iter()
            .map(|&i| g.fns[i].crate_name.as_deref().unwrap_or(""))
            .collect();
        assert!(reached.contains(&"rnb_core"));
        assert!(!reached.contains(&"rnb_sim"));
    }

    #[test]
    fn ambiguous_calls_are_recorded_and_overapproximated() {
        let g = graph(&[(
            "crates/rnb-store/src/a.rs",
            "struct A; struct B;\n\
             impl A { fn tick(&self) {} }\n\
             impl B { fn tick(&self) { helper(); } }\n\
             fn helper() {}\n\
             fn root(a: &A) { a.tick(); }\n",
        )]);
        assert_eq!(g.ambiguities.len(), 1);
        assert_eq!(g.ambiguities[0].callee, "tick");
        assert_eq!(g.ambiguities[0].candidates, 2);
        // Over-approximation: both `tick`s (and helper via B::tick) are
        // considered reachable.
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/a.rs", "root")]);
        assert!(reach.contains(&idx(&g, "helper")));
    }

    #[test]
    fn macros_and_externals_draw_no_edges() {
        let g = graph(&[(
            "crates/rnb-store/src/a.rs",
            "fn root(v: Vec<u8>) { println!(\"x\"); v.len(); std::mem::drop(v); }\n\
             fn never() {}\n",
        )]);
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/a.rs", "root")]);
        assert_eq!(reach.len(), 1, "only the root itself");
    }

    #[test]
    fn missing_roots_are_reported() {
        let g = graph(&[("crates/rnb-store/src/a.rs", "fn present() {}\n")]);
        let (_, missing) = g.reachable(&[
            ("crates/rnb-store/src/a.rs", "present"),
            ("crates/rnb-store/src/a.rs", "renamed_away"),
        ]);
        assert_eq!(
            missing,
            vec![(
                "crates/rnb-store/src/a.rs".to_string(),
                "renamed_away".to_string()
            )]
        );
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let g = graph(&[(
            "crates/rnb-store/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { live(); } }\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}\n";
        let g = graph(&[("crates/rnb-store/src/a.rs", src)]);
        let at = src.find("leaf()").expect("fixture");
        let f = g
            .enclosing_fn("crates/rnb-store/src/a.rs", at)
            .expect("contained");
        assert_eq!(f.name, "inner");
    }

    #[test]
    fn turbofish_calls_still_resolve() {
        let g = graph(&[(
            "crates/rnb-store/src/a.rs",
            "fn root() { helper::<u32>(); }\nfn helper<T>() {}\n",
        )]);
        let (reach, _) = g.reachable(&[("crates/rnb-store/src/a.rs", "root")]);
        assert!(reach.contains(&idx(&g, "helper")));
    }
}
