//! The invariant inventory: a human-written register (INVARIANTS.md) of
//! every `debug_assert*` message and sentinel-value pattern in non-test
//! workspace code, cross-checked by lint rule R4 in both directions —
//! an unregistered site fails the lint, and so does a stale row.

use std::fmt;

/// What an inventory row (or source site) describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// A `debug_assert!`/`debug_assert_eq!`/`debug_assert_ne!` message.
    DebugAssert,
    /// A `<int>::MAX` sentinel-value token.
    Sentinel,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::DebugAssert => "debug_assert",
            Kind::Sentinel => "sentinel",
        })
    }
}

/// One registered invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative file the invariant lives in.
    pub file: String,
    /// Row kind.
    pub kind: Kind,
    /// Assertion message (for `debug_assert`) or sentinel token.
    pub pattern: String,
    /// Why the invariant holds / what the sentinel means.
    pub rationale: String,
}

/// The parsed register.
#[derive(Debug, Default)]
pub struct Inventory {
    entries: Vec<Entry>,
}

impl Inventory {
    /// Parse the markdown register: every 4-cell table row
    /// `| file | kind | pattern | rationale |` outside the header.
    pub fn parse(text: &str) -> Result<Inventory, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if !line.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() != 4 {
                continue;
            }
            // Skip the header and its underline.
            if cells[0] == "file" || cells[0].chars().all(|c| c == '-' || c == ':') {
                continue;
            }
            let kind = match cells[1] {
                "debug_assert" => Kind::DebugAssert,
                "sentinel" => Kind::Sentinel,
                other => {
                    return Err(format!(
                        "INVARIANTS.md line {}: unknown kind {other:?} \
                         (expected `debug_assert` or `sentinel`)",
                        idx + 1
                    ));
                }
            };
            if cells[0].is_empty() || cells[2].is_empty() || cells[3].is_empty() {
                return Err(format!(
                    "INVARIANTS.md line {}: empty cell in inventory row",
                    idx + 1
                ));
            }
            entries.push(Entry {
                file: cells[0].to_string(),
                kind,
                pattern: cells[2].to_string(),
                rationale: cells[3].to_string(),
            });
        }
        Ok(Inventory { entries })
    }

    /// All registered rows.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Is `(kind, file, pattern)` registered?
    pub fn covers(&self, kind: Kind, file: &str, pattern: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.kind == kind && e.file == file && e.pattern == pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Invariants

| file | kind | pattern | rationale |
|------|------|---------|-----------|
| crates/a.rs | debug_assert | gain matches | recomputed each round |
| crates/b.rs | sentinel | usize::MAX | NIL freelist index |
";

    #[test]
    fn parses_rows_and_skips_header() {
        let inv = Inventory::parse(SAMPLE).expect("parses");
        assert_eq!(inv.entries().len(), 2);
        assert!(inv.covers(Kind::DebugAssert, "crates/a.rs", "gain matches"));
        assert!(inv.covers(Kind::Sentinel, "crates/b.rs", "usize::MAX"));
        assert!(!inv.covers(Kind::Sentinel, "crates/a.rs", "usize::MAX"));
    }

    #[test]
    fn rejects_unknown_kind_and_empty_cells() {
        assert!(Inventory::parse("| f.rs | banana | x | y |").is_err());
        assert!(Inventory::parse("| f.rs | sentinel |  | y |").is_err());
    }

    #[test]
    fn ignores_prose_and_narrow_tables() {
        let inv = Inventory::parse("plain text\n| a | b |\n").expect("parses");
        assert_eq!(inv.entries().len(), 0);
    }
}
