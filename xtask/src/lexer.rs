//! A lightweight token stream over **scrubbed** Rust source.
//!
//! The call-graph analysis (rules R7–R10) needs more structure than the
//! substring rules R1–R6: item boundaries, brace nesting, and call
//! syntax. A full Rust parser is out of scope (and out of reach in a
//! std-only build), but a token stream over [`crate::scrub`]bed text is
//! enough: comments and literal contents are already blanked, so the
//! only lexical subtleties left are raw-string *delimiters*, char
//! literals vs lifetimes, and identifier/number/punctuation boundaries.
//!
//! Every token carries byte offsets into the scrubbed text, which —
//! because scrubbing is length-preserving — are also offsets into the
//! raw source, so findings report real lines.

/// Token classification, deliberately coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident,
    /// Numeric literal (starts with a digit; suffixes included).
    Number,
    /// A string literal span (contents already blanked by the scrubber).
    Str,
    /// A char literal span (contents already blanked).
    Char,
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// One punctuation byte (`{`, `(`, `.`, `:`, …).
    Punct(u8),
}

/// One token: kind plus its byte span in the (scrubbed == raw) text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `scrubbed`.
    pub fn text<'a>(&self, scrubbed: &'a str) -> &'a str {
        &scrubbed[self.start..self.end]
    }

    /// True for an identifier token spelling exactly `word`.
    pub fn is_ident(&self, scrubbed: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(scrubbed) == word
    }

    /// True for a punctuation token of byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize scrubbed source. Whitespace is skipped; unknown bytes become
/// single-byte punctuation so the stream never stalls.
pub fn tokenize(scrubbed: &str) -> Vec<Token> {
    let b = scrubbed.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 4);
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the prefix lexes as an
            // identifier, but the literal starts right after it.
            let word = &scrubbed[start..i];
            if matches!(word, "r" | "b" | "br" | "rb") && raw_string_ahead(b, i) {
                let end = skip_raw_string(b, i);
                out.push(Token {
                    kind: TokKind::Str,
                    start,
                    end,
                });
                i = end;
            } else {
                out.push(Token {
                    kind: TokKind::Ident,
                    start,
                    end: i,
                });
            }
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (is_ident_continue(b[i]) || b[i] == b'.') {
                // `0..n` range syntax: stop before a second consecutive dot.
                if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                    break;
                }
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Number,
                start,
                end: i,
            });
        } else if c == b'"' {
            // Plain string literal (contents blanked; `\"` impossible).
            let start = i;
            i += 1;
            while i < b.len() && b[i] != b'"' {
                i += 1;
            }
            i = (i + 1).min(b.len());
            out.push(Token {
                kind: TokKind::Str,
                start,
                end: i,
            });
        } else if c == b'\'' {
            let start = i;
            // Lifetime when an identifier follows; otherwise the scrubber
            // left a char literal (`'` + blanks + `'`).
            if b.get(i + 1).copied().is_some_and(is_ident_start) {
                i += 2;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Lifetime,
                    start,
                    end: i,
                });
            } else {
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                out.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: i,
                });
            }
        } else {
            out.push(Token {
                kind: TokKind::Punct(c),
                start: i,
                end: i + 1,
            });
            i += 1;
        }
    }
    out
}

/// After a raw-string prefix ident, does `#*"` follow?
fn raw_string_ahead(b: &[u8], mut i: usize) -> bool {
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i < b.len() && b[i] == b'"'
}

/// Skip a raw string starting at the `#`/`"` after its prefix; returns
/// the offset one past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(
        i < b.len() && b[i] == b'"',
        "raw string prefix must be followed by a quote"
    );
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let s = scrub(src);
        tokenize(&s)
            .into_iter()
            .map(|t| (t.kind, t.text(&s).to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_and_punct() {
        let toks = kinds("fn foo_1(x: u32) -> u32 { x + 0x1f }");
        assert_eq!(toks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokKind::Ident, "foo_1".into()));
        assert_eq!(toks[2], (TokKind::Punct(b'('), "(".into()));
        assert!(toks.contains(&(TokKind::Number, "0x1f".into())));
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = kinds(r#"let s = "panic!(inside)"; call();"#);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        // The blanked contents never yield tokens.
        assert!(!toks.iter().any(|(_, t)| t.contains("panic")));
        assert!(toks.iter().any(|(_, t)| t == "call"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let toks = kinds(r##"let a = r#"x"#; let b = b"y"; get(a);"##);
        let strs = toks.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 2);
        assert!(toks.iter().any(|(_, t)| t == "get"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn range_syntax_does_not_eat_dots() {
        let toks = kinds("for i in 0..count { a[i] = 1.5; }");
        assert!(toks.contains(&(TokKind::Number, "0".into())));
        assert!(toks.contains(&(TokKind::Number, "1.5".into())));
        assert!(toks.contains(&(TokKind::Ident, "count".into())));
    }
}
