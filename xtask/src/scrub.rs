//! Source scrubbing: turn Rust source into a same-length shadow text in
//! which comment bodies and string/char-literal contents are blanked.
//!
//! Pattern rules (see [`crate::rules`]) match against the scrubbed text,
//! so `panic!` in a doc comment or `"Instant::now"` in a string literal
//! never produces a false positive — while every byte offset and line
//! number in the scrubbed text maps 1:1 onto the original source.

/// A parsed source file ready for rule checks.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The original text.
    pub raw: String,
    /// Same length as `raw`; comments and literal contents blanked.
    pub scrubbed: String,
    /// `test_mask[i]` is true when line `i` (0-based) lies inside
    /// `#[cfg(test)]`-gated code.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Parse `raw` as the contents of `rel_path`.
    pub fn new(rel_path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let scrubbed = scrub(&raw);
        let test_mask = test_mask(&scrubbed);
        SourceFile {
            rel_path: rel_path.into(),
            raw,
            scrubbed,
            test_mask,
        }
    }

    /// 1-based line number of byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.raw[..offset].bytes().filter(|&b| b == b'\n').count() + 1
    }

    /// True when byte `offset` lies inside `#[cfg(test)]`-gated code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_mask
            .get(self.line_of(offset) - 1)
            .copied()
            .unwrap_or(false)
    }

    /// The raw text of the (1-based) line containing `offset`, trimmed.
    pub fn excerpt(&self, offset: usize) -> &str {
        let start = self.raw[..offset].rfind('\n').map_or(0, |p| p + 1);
        let end = self.raw[offset..]
            .find('\n')
            .map_or(self.raw.len(), |p| offset + p);
        self.raw[start..end].trim()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

/// Blank comment bodies and literal contents, preserving length, line
/// structure, and all delimiter characters (`"` stays so literals remain
/// visibly literals; their contents become spaces).
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match state {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    state = State::Str { raw_hashes: None };
                    out.push(b'"');
                    i += 1;
                } else if (c == b'r' || c == b'b') && is_raw_string_start(b, i) {
                    // r"..."  r#"..."#  br#"..."#  b"..."
                    let mut j = i;
                    while b[j] == b'r' || b[j] == b'b' {
                        out.push(b[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&b'#') {
                        out.push(b'#');
                        hashes += 1;
                        j += 1;
                    }
                    // is_raw_string_start guarantees a quote here.
                    out.push(b'"');
                    let is_raw = src[i..j].contains('r');
                    state = State::Str {
                        raw_hashes: is_raw.then_some(hashes),
                    };
                    i = j + 1;
                } else if c == b'\'' {
                    if let Some(end) = char_literal_end(b, i) {
                        out.push(b'\'');
                        for &cc in &b[i + 1..end] {
                            out.push(if cc == b'\n' { b'\n' } else { b' ' });
                        }
                        out.push(b'\'');
                        i = end + 1;
                        state = State::Code;
                    } else {
                        // A lifetime tick; leave it.
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == b'\n' {
                    out.push(b'\n');
                    state = State::Code;
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if c == b'"' {
                        out.push(b'"');
                        i += 1;
                        state = State::Code;
                    } else {
                        out.push(if c == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                Some(h) => {
                    if c == b'"' && closes_raw_string(b, i, h) {
                        out.push(b'"');
                        out.extend(std::iter::repeat_n(b'#', h as usize));
                        i += 1 + h as usize;
                        state = State::Code;
                    } else {
                        out.push(if c == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            },
        }
    }
    // Length preservation is what lets offsets be shared with `raw`.
    debug_assert_eq!(
        out.len(),
        b.len(),
        "scrubbed text must preserve source length"
    );
    String::from_utf8(out).unwrap_or_default()
}

/// Does a raw/byte string literal start at `i` (`r"`, `r#"`, `br"`, `b"`)?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Reject identifier contexts like `for b in ..` / `var["key"]` by
    // requiring the previous char to not be part of an identifier.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    let mut prefix = 0;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && prefix < 2 {
        j += 1;
        prefix += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Does the quote at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw_string(b: &[u8], i: usize, hashes: u32) -> bool {
    let h = hashes as usize;
    i + h < b.len() && b[i + 1..=i + h].iter().all(|&c| c == b'#')
}

/// If a char literal starts at `i` (which holds `'`), return the index of
/// its closing quote; `None` when this tick is a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escaped: scan to the closing quote.
        let mut j = i + 2;
        while j < b.len() {
            if b[j] == b'\'' {
                return Some(j);
            }
            j += 1;
            if j > i + 12 {
                break; // longest escape is \u{10FFFF}
            }
        }
        None
    } else {
        // Unescaped: `'x'` where x is one char (possibly multibyte).
        let mut j = i + 2;
        while j < b.len() && j <= i + 5 {
            if b[j] == b'\'' {
                return (j == i + 2 || b[i + 1] >= 0x80).then_some(j);
            }
            if b[j] < 0x80 {
                break;
            }
            j += 1;
        }
        None
    }
}

/// Mark the lines covered by `#[cfg(test)]`-gated items.
fn test_mask(scrubbed: &str) -> Vec<bool> {
    let lines = scrubbed.lines().count() + 1;
    let mut mask = vec![false; lines];
    let b = scrubbed.as_bytes();
    let mut search = 0;
    while let Some(found) = scrubbed[search..].find("#[cfg(") {
        let attr = search + found;
        search = attr + 6;
        let close = match scrubbed[attr..].find(']') {
            Some(c) => attr + c,
            None => continue,
        };
        let inside = &scrubbed[attr + 6..close];
        let gated = inside.starts_with("test)")
            || inside.starts_with("all(test")
            || inside.starts_with("any(test");
        if !gated {
            continue;
        }
        // The gated item runs until its closing brace (or `;` for
        // brace-free items like gated `use`).
        let mut j = close + 1;
        let mut depth = 0usize;
        let mut item_end = scrubbed.len();
        while j < b.len() {
            match b[j] {
                b'{' => depth += 1,
                b'}' => {
                    if depth <= 1 {
                        item_end = j;
                        break;
                    }
                    depth -= 1;
                }
                b';' if depth == 0 => {
                    item_end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let first = scrubbed[..attr].bytes().filter(|&c| c == b'\n').count();
        let last = scrubbed[..item_end].bytes().filter(|&c| c == b'\n').count();
        for line in mask.iter_mut().take(last + 1).skip(first) {
            *line = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r#"
// panic!("in a comment")
/// doc .unwrap()
fn f() {
    let s = "panic!(inside string)";
    let c = 'x';
    let t = 'a' as u32; // lifetime-free
}
"#;
        let out = scrub(src);
        assert_eq!(out.len(), src.len());
        assert!(!out.contains("panic!"));
        assert!(!out.contains("unwrap"));
        assert!(out.contains("fn f()"));
        assert!(out.contains("let s = \""));
        assert!(out.contains("as u32"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = r##"let a = r#"Instant::now() " quote"#; let b = "esc \" Instant::now";"##;
        let out = scrub(src);
        assert_eq!(out.len(), src.len());
        assert!(!out.contains("Instant::now"));
        assert!(out.contains("let b ="));
    }

    #[test]
    fn lifetimes_survive_char_literal_detection() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = '\\n'; x }";
        let out = scrub(src);
        assert_eq!(out.len(), src.len());
        assert!(out.contains("fn f<'a>(x: &'a str)"));
        assert!(!out.contains("\\n"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner panic!() */ still comment */ fn g() {}";
        let out = scrub(src);
        assert!(!out.contains("panic!"));
        assert!(out.contains("fn g()"));
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "\
fn live() { x.unwrap(); }

#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}

fn also_live() {}
";
        let f = SourceFile::new("a.rs", src);
        let live = f.raw.find("x.unwrap").expect("fixture");
        let test = f.raw.find("y.unwrap").expect("fixture");
        let tail = f.raw.find("also_live").expect("fixture");
        assert!(!f.in_test_code(live));
        assert!(f.in_test_code(test));
        assert!(!f.in_test_code(tail));
    }

    #[test]
    fn test_mask_handles_cfg_all_and_item_forms() {
        let src = "\
#[cfg(all(test, feature = \"x\"))]
mod gated { fn a() {} }
#[cfg(test)]
use std::fmt;
fn live() {}
";
        let f = SourceFile::new("a.rs", src);
        assert!(f.in_test_code(f.raw.find("fn a").expect("fixture")));
        assert!(f.in_test_code(f.raw.find("use std").expect("fixture")));
        assert!(!f.in_test_code(f.raw.find("fn live").expect("fixture")));
    }
}
