//! The repo-specific lint rules.
//!
//! | Rule | Scope | Invariant |
//! |------|-------|-----------|
//! | R1 `panic-free-serving-path` | `rnb-store` server/shard/store/protocol, `rnb-client` client | no `unwrap`/`expect`/`panic!`-family in non-test code: errors must propagate as `Result` |
//! | R2 `deterministic-simulation` | whole workspace | no unseeded randomness anywhere; no wall-clock reads outside the benchmark harness and `rnb-store`'s `clock.rs` (everything else takes an injected `Clock`) |
//! | R3 `lossless-wire-casts` | `rnb-store/src/protocol.rs` | no `as` integer casts in wire-format code: use `try_from` |
//! | R4 `invariant-inventory` | whole workspace | every non-test `debug_assert*` carries a message registered in INVARIANTS.md; every `::MAX` sentinel is registered; no stale entries |
//! | R5 `no-thread-sleep` | whole workspace | no `thread::sleep` in non-test code outside the justified allowlist: sleeping hides latency bugs and stalls serving threads |
//! | R6 `doc-example-coverage` | `rnb-core` | every non-test `pub fn` in the public-API crate carries a ```-fenced doc example (doctested usage), or an allowlisted reason |
//! | R7 `serving-path-clone` | call-graph closure of the serving roots | no `.clone()`/`.cloned()`/`.to_vec()`/`.to_owned()` reachable from the store's protocol loop or `RnbClient::multi_get`, outside the justified allowlist |
//! | R8 `must-use-planner` | `rnb-cover` | every pure planner entry point carries `#[must_use]`: dropping a cover plan silently is always a bug |
//! | R9 `transitive-panic-freedom` | call-graph closure of the serving roots | no panic-family call or panicking slice helper reachable from `serve_connection`/`get_multi`/`multi_get`, except via registered invariants |
//! | R10 `lock-discipline` | `rnb-store` | no `.lock()` guard's live scope contains another `.lock()` or socket I/O — the machine-checked form of the "one lock per shard" invariant |
//!
//! All rules match against [`SourceFile::scrubbed`] text, so comments and
//! string literals can never trip them. (R6 additionally reads
//! [`SourceFile::raw`] for the doc-comment blocks themselves, which the
//! scrubber blanks; R8 reads raw attribute lines the same way.)
//! R7 and R9 walk the approximate call graph ([`crate::callgraph`]) from
//! fixed root functions; a renamed root is itself a violation so the
//! rules cannot be disabled silently.

use crate::callgraph::CallGraph;
use crate::inventory::{Inventory, Kind};
use crate::scrub::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One finding. The lint fails when any exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (`R1`..`R4` plus a slug).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, 0 for whole-file findings.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Files on the request-serving path, held to the panic-free standard.
pub const SERVING_PATH: &[&str] = &[
    "crates/rnb-store/src/server.rs",
    "crates/rnb-store/src/shard.rs",
    "crates/rnb-store/src/store.rs",
    "crates/rnb-store/src/protocol.rs",
    "crates/rnb-client/src/client.rs",
];

/// Wire-format files where every integer narrowing must use `try_from`.
pub const WIRE_FORMAT_PATH: &[&str] = &["crates/rnb-store/src/protocol.rs"];

/// Files allowed to read wall-clock time, with the reason on record.
/// A stale entry (no remaining wall-clock use) is itself a violation,
/// so this list cannot rot.
pub const TIME_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/rnb-bench/",
        "benchmark harness: measuring wall-clock latency/throughput is its job",
    ),
    (
        "crates/rnb-store/src/clock.rs",
        "the one sanctioned wall-clock read in rnb-store: RealClock anchors \
         an Instant; shard/store/server/loadgen all take an injected Clock",
    ),
    (
        "crates/rnb-cluster/",
        "cluster scenario harness: recovery-time artifacts report measured \
         wall-clock (recovery_ms) alongside the round-count metric",
    ),
];

/// Files allowed to call `thread::sleep` in non-test code, with the
/// reason on record. Same hygiene as [`TIME_ALLOWLIST`]: a stale entry is
/// itself a violation. Everything else must block on real events
/// (I/O readiness, channels, `thread::park`) instead of sleeping —
/// sleeps in serving or simulation code hide latency bugs and turn into
/// arbitrary stalls under load.
pub const SLEEP_ALLOWLIST: &[(&str, &str)] = &[(
    "crates/rnb-bench/src/bin/ext_udp.rs",
    "UDP is fire-and-forget: the external-traffic probe has no completion \
     event to block on, so it paces batches with a fixed settle delay",
)];

const SLEEP_PATTERN: &str = "thread::sleep";

/// R6 scope: the public-API crate whose `pub fn`s must show a doc example.
/// `rnb-core` is what downstream users program against; an example per
/// function keeps the API documentation executable (doctests) instead of
/// aspirational.
pub const DOC_EXAMPLE_PATH: &str = "crates/rnb-core/src/";

/// `(file, fn, reason)` triples excused from R6: trivial accessors whose
/// one-line bodies return a stored field and whose behaviour every
/// constructor example already demonstrates. Same hygiene as
/// [`TIME_ALLOWLIST`]: an entry whose function disappeared or has since
/// gained an example is reported stale, so the list cannot rot.
pub const DOC_EXAMPLE_ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "crates/rnb-core/src/baseline.rs",
        "copies",
        "trivial accessor (group count); shown by FullSystemReplication::new's example",
    ),
    (
        "crates/rnb-core/src/baseline.rs",
        "servers",
        "trivial accessor (total machines); shown by FullSystemReplication::new's example",
    ),
    (
        "crates/rnb-core/src/bundler.rs",
        "placement",
        "trivial accessor returning the owned placement; every planning example goes through it implicitly",
    ),
    (
        "crates/rnb-core/src/write.rs",
        "policy",
        "trivial accessor returning the stored WritePolicy",
    ),
    (
        "crates/rnb-core/src/write.rs",
        "placement",
        "trivial accessor returning the owned placement, mirror of Bundler::placement",
    ),
];

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const UNSEEDED_RNG_PATTERNS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "rand::rng()",
    "from_os_rng",
    "OsRng",
];

const WALLCLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime"];

/// Sentinel tokens that must be registered in the invariant inventory.
pub const SENTINEL_TOKENS: &[&str] = &[
    "usize::MAX",
    "u64::MAX",
    "u32::MAX",
    "u16::MAX",
    "u8::MAX",
    "i64::MAX",
    "i32::MAX",
];

/// Every byte offset at which `pattern` occurs in non-test scrubbed code.
fn non_test_occurrences<'a>(
    file: &'a SourceFile,
    pattern: &'a str,
) -> impl Iterator<Item = usize> + 'a {
    let mut search = 0;
    std::iter::from_fn(move || {
        while let Some(found) = file.scrubbed[search..].find(pattern) {
            let offset = search + found;
            search = offset + pattern.len();
            if !file.in_test_code(offset) {
                return Some(offset);
            }
        }
        None
    })
}

/// R1: the serving path must propagate errors, not panic.
pub fn check_panic_free(file: &SourceFile) -> Vec<Violation> {
    if !SERVING_PATH.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pattern in PANIC_PATTERNS {
        for offset in non_test_occurrences(file, pattern) {
            out.push(Violation {
                rule: "R1/panic-free-serving-path",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "`{pattern}` in serving-path code; propagate a Result instead \
                     (`{}`)",
                    file.excerpt(offset)
                ),
            });
        }
    }
    out
}

/// R2: simulations must be deterministic — no unseeded randomness at all,
/// and wall-clock reads only in allowlisted measurement/TTL files.
pub fn check_determinism(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for pattern in UNSEEDED_RNG_PATTERNS {
        for offset in non_test_occurrences(file, pattern) {
            out.push(Violation {
                rule: "R2/deterministic-simulation",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "`{pattern}` is unseeded randomness; take a seed and use \
                     `StdRng::seed_from_u64` (`{}`)",
                    file.excerpt(offset)
                ),
            });
        }
    }
    let allowed = TIME_ALLOWLIST
        .iter()
        .any(|(prefix, _)| file.rel_path.starts_with(prefix));
    if !allowed {
        for pattern in WALLCLOCK_PATTERNS {
            for offset in non_test_occurrences(file, pattern) {
                out.push(Violation {
                    rule: "R2/deterministic-simulation",
                    file: file.rel_path.clone(),
                    line: file.line_of(offset),
                    message: format!(
                        "`{pattern}` outside the time allowlist; thread a logical \
                         clock through instead, or add an allowlist entry with a \
                         written reason in xtask/src/rules.rs (`{}`)",
                        file.excerpt(offset)
                    ),
                });
            }
        }
    }
    out
}

/// Which wall-clock allowlist entries are actually exercised by `files`.
pub fn used_time_allowlist_entries(files: &[SourceFile]) -> BTreeSet<&'static str> {
    let mut used = BTreeSet::new();
    for (prefix, _) in TIME_ALLOWLIST {
        for file in files {
            if file.rel_path.starts_with(prefix)
                && WALLCLOCK_PATTERNS
                    .iter()
                    .any(|p| non_test_occurrences(file, p).next().is_some())
            {
                used.insert(*prefix);
            }
        }
    }
    used
}

/// R2 (hygiene): allowlist entries must still be needed.
pub fn check_stale_allowlist(files: &[SourceFile]) -> Vec<Violation> {
    let used = used_time_allowlist_entries(files);
    TIME_ALLOWLIST
        .iter()
        .filter(|(prefix, _)| !used.contains(prefix))
        .map(|(prefix, _)| Violation {
            rule: "R2/deterministic-simulation",
            file: prefix.to_string(),
            line: 0,
            message: format!(
                "stale time allowlist entry `{prefix}`: no wall-clock use remains; \
                 remove it from xtask/src/rules.rs"
            ),
        })
        .collect()
}

/// R5: no `thread::sleep` in non-test code outside the allowlist.
pub fn check_no_sleep(file: &SourceFile) -> Vec<Violation> {
    if SLEEP_ALLOWLIST
        .iter()
        .any(|(prefix, _)| file.rel_path.starts_with(prefix))
    {
        return Vec::new();
    }
    non_test_occurrences(file, SLEEP_PATTERN)
        .map(|offset| Violation {
            rule: "R5/no-thread-sleep",
            file: file.rel_path.clone(),
            line: file.line_of(offset),
            message: format!(
                "`{SLEEP_PATTERN}` in non-test code; block on a real event \
                 (I/O readiness, a channel, `thread::park`) instead, or add \
                 an allowlist entry with a written reason in \
                 xtask/src/rules.rs (`{}`)",
                file.excerpt(offset)
            ),
        })
        .collect()
}

/// R5 (hygiene): sleep allowlist entries must still be needed.
pub fn check_stale_sleep_allowlist(files: &[SourceFile]) -> Vec<Violation> {
    SLEEP_ALLOWLIST
        .iter()
        .filter(|(prefix, _)| {
            !files.iter().any(|file| {
                file.rel_path.starts_with(prefix)
                    && non_test_occurrences(file, SLEEP_PATTERN).next().is_some()
            })
        })
        .map(|(prefix, _)| Violation {
            rule: "R5/no-thread-sleep",
            file: prefix.to_string(),
            line: 0,
            message: format!(
                "stale sleep allowlist entry `{prefix}`: no `thread::sleep` \
                 remains; remove it from xtask/src/rules.rs"
            ),
        })
        .collect()
}

/// A non-test `pub fn` declaration and whether its doc block shows an
/// example (a ``` fence anywhere in the contiguous `///` run above it,
/// attributes skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubFnSite {
    /// 1-based declaration line.
    pub line: usize,
    /// The function's identifier.
    pub name: String,
    /// Whether the attached doc comment contains a fenced code block.
    pub has_example: bool,
}

/// Every non-test `pub fn` in `file` (plain/`const`/`async`/`unsafe`;
/// `pub(crate)` and narrower visibilities are not public API and are
/// skipped). Declaration detection runs on the scrubbed text so strings
/// and comments cannot fake one; the doc block is read from the raw text
/// because the scrubber blanks comments.
pub fn public_fns(file: &SourceFile) -> Vec<PubFnSite> {
    const PUB_FN_PREFIXES: &[&str] = &[
        "pub fn ",
        "pub const fn ",
        "pub async fn ",
        "pub unsafe fn ",
    ];
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let mut out = Vec::new();
    let mut offset = 0usize;
    for (idx, sline) in file.scrubbed.lines().enumerate() {
        let line_start = offset;
        offset += sline.len() + 1;
        let trimmed = sline.trim_start();
        let Some(rest) = PUB_FN_PREFIXES.iter().find_map(|p| trimmed.strip_prefix(p)) else {
            continue;
        };
        if file.in_test_code(line_start + (sline.len() - trimmed.len())) {
            continue;
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Walk upward over the attribute lines to the contiguous doc block.
        let mut has_example = false;
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let above = raw_lines.get(i).map_or("", |l| l.trim());
            if above.starts_with("#[") {
                continue;
            }
            if above.starts_with("///") {
                if above.contains("```") {
                    has_example = true;
                }
                continue;
            }
            break;
        }
        out.push(PubFnSite {
            line: idx + 1,
            name,
            has_example,
        });
    }
    out
}

/// R6: public API functions must show a doc example.
pub fn check_doc_examples(file: &SourceFile) -> Vec<Violation> {
    check_doc_examples_with(file, DOC_EXAMPLE_ALLOWLIST)
}

/// [`check_doc_examples`] against an explicit allowlist (fixture tests).
pub fn check_doc_examples_with(
    file: &SourceFile,
    allowlist: &[(&str, &str, &str)],
) -> Vec<Violation> {
    if !file.rel_path.starts_with(DOC_EXAMPLE_PATH) {
        return Vec::new();
    }
    public_fns(file)
        .into_iter()
        .filter(|f| !f.has_example)
        .filter(|f| {
            !allowlist
                .iter()
                .any(|(path, name, _)| *path == file.rel_path && *name == f.name)
        })
        .map(|f| Violation {
            rule: "R6/doc-example-coverage",
            file: file.rel_path.clone(),
            line: f.line,
            message: format!(
                "`pub fn {}` has no doc example; add a ```-fenced example to \
                 its doc comment, or an allowlist entry with a written reason \
                 in xtask/src/rules.rs",
                f.name
            ),
        })
        .collect()
}

/// R6 (hygiene): allowlist entries must still name an example-less fn.
pub fn check_stale_doc_allowlist(files: &[SourceFile]) -> Vec<Violation> {
    check_stale_doc_allowlist_with(files, DOC_EXAMPLE_ALLOWLIST)
}

/// [`check_stale_doc_allowlist`] against an explicit allowlist.
pub fn check_stale_doc_allowlist_with(
    files: &[SourceFile],
    allowlist: &[(&str, &str, &str)],
) -> Vec<Violation> {
    allowlist
        .iter()
        .filter(|(path, name, _)| {
            !files.iter().any(|file| {
                file.rel_path == *path
                    && public_fns(file)
                        .iter()
                        .any(|f| f.name == *name && !f.has_example)
            })
        })
        .map(|(path, name, _)| Violation {
            rule: "R6/doc-example-coverage",
            file: (*path).to_string(),
            line: 0,
            message: format!(
                "stale doc-example allowlist entry `{path}::{name}`: the \
                 function is gone or now has an example; remove the entry \
                 from xtask/src/rules.rs"
            ),
        })
        .collect()
}

const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// R3: wire-format code converts integers with `try_from`, never `as`.
pub fn check_wire_casts(file: &SourceFile) -> Vec<Violation> {
    if !WIRE_FORMAT_PATH.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for offset in non_test_occurrences(file, " as ") {
        let after = &file.scrubbed[offset + 4..];
        let token: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if INT_CAST_TARGETS.contains(&token.as_str()) {
            out.push(Violation {
                rule: "R3/lossless-wire-casts",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "integer `as {token}` cast in wire-format code; use \
                     `{token}::try_from` and surface the error (`{}`)",
                    file.excerpt(offset)
                ),
            });
        }
    }
    out
}

/// A `debug_assert*` site or sentinel token occurrence found in source.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InvariantSite {
    /// Which kind of invariant marker this is.
    pub kind: Kind,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The registered identity: assertion message, or sentinel token.
    pub pattern: String,
}

/// Extract every non-test invariant site from `file`.
///
/// `debug_assert!`/`debug_assert_eq!`/`debug_assert_ne!` sites yield their
/// message string (the first argument that is a string literal at the
/// macro's top nesting level); a missing message is reported as a
/// violation because an unlabeled invariant cannot be registered.
pub fn collect_invariant_sites(file: &SourceFile) -> (Vec<InvariantSite>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for offset in non_test_occurrences(file, "debug_assert") {
        // Skip the `debug_assert_eq`-suffix matches of plain "debug_assert".
        let Some(open_rel) = file.scrubbed[offset..].find('(') else {
            continue;
        };
        let head = &file.scrubbed[offset..offset + open_rel];
        if !matches!(
            head.trim_end_matches('!'),
            "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
        ) {
            continue;
        }
        let open = offset + open_rel;
        let Some(close) = matching_paren(&file.scrubbed, open) else {
            continue;
        };
        match extract_message(file, open, close) {
            Some(message) => sites.push(InvariantSite {
                kind: Kind::DebugAssert,
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                pattern: message,
            }),
            None => violations.push(Violation {
                rule: "R4/invariant-inventory",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "`{head}` without a message: label the invariant so it can \
                     be registered in INVARIANTS.md (`{}`)",
                    file.excerpt(offset)
                ),
            }),
        }
    }
    for token in SENTINEL_TOKENS {
        for offset in non_test_occurrences(file, token) {
            // `usize::MAX` also matches inside `u32::MAX`? No — but make
            // sure we are at a token boundary on the left (e.g. not a
            // hypothetical `busize::MAX`).
            if offset > 0 {
                let prev = file.scrubbed.as_bytes()[offset - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            sites.push(InvariantSite {
                kind: Kind::Sentinel,
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                pattern: (*token).to_string(),
            });
        }
    }
    (sites, violations)
}

/// R4: cross-check collected sites against the inventory, both ways.
pub fn check_inventory(sites: &[InvariantSite], inventory: &Inventory) -> Vec<Violation> {
    let mut out = Vec::new();
    for site in sites {
        if !inventory.covers(site.kind, &site.file, &site.pattern) {
            out.push(Violation {
                rule: "R4/invariant-inventory",
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "unregistered {} `{}`: add a row to INVARIANTS.md explaining \
                     why this invariant holds",
                    site.kind, site.pattern
                ),
            });
        }
    }
    for entry in inventory.entries() {
        let live = sites
            .iter()
            .any(|s| s.kind == entry.kind && s.file == entry.file && s.pattern == entry.pattern);
        if !live {
            out.push(Violation {
                rule: "R4/invariant-inventory",
                file: entry.file.clone(),
                line: 0,
                message: format!(
                    "stale inventory row ({} `{}`): no matching site remains; \
                     remove or update the INVARIANTS.md entry",
                    entry.kind, entry.pattern
                ),
            });
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open` (scrubbed text, so string
/// contents cannot unbalance it).
fn matching_paren(scrubbed: &str, open: usize) -> Option<usize> {
    let b = scrubbed.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The message argument of a `debug_assert*` call spanning `open..=close`:
/// the first top-level comma-separated argument that begins with a string
/// literal. Returns its raw contents.
fn extract_message(file: &SourceFile, open: usize, close: usize) -> Option<String> {
    let b = file.scrubbed.as_bytes();
    let mut depth = 0usize;
    let mut arg_start = open + 1;
    let mut i = open;
    while i <= close {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 1 => {
                if let Some(msg) = string_literal_at(file, arg_start, i) {
                    return Some(msg);
                }
                arg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    string_literal_at(file, arg_start, close)
}

/// If the argument in `range` starts with a string literal, return its
/// raw (unscrubbed) contents.
fn string_literal_at(file: &SourceFile, start: usize, end: usize) -> Option<String> {
    let slice = &file.scrubbed[start..end];
    let rel = slice.find(|c: char| !c.is_whitespace())?;
    if !slice[rel..].starts_with('"') {
        return None;
    }
    let lit_start = start + rel + 1;
    let lit_end = lit_start + file.scrubbed[lit_start..end].find('"')?;
    Some(file.raw[lit_start..lit_end].to_string())
}

// ---------------------------------------------------------------------
// Call-graph rules (R7–R10) and the lint self-check.
// ---------------------------------------------------------------------

/// The rule catalogue: every `Violation::rule` id the lint can emit, with
/// a one-line summary. The self-check rejects duplicate ids, so a new
/// rule cannot shadow an existing one.
pub const RULES: &[(&str, &str)] = &[
    (
        "R0/lint-self-check",
        "no duplicate rule ids or allowlist keys",
    ),
    (
        "R1/panic-free-serving-path",
        "no panic-family calls in serving-path files",
    ),
    (
        "R2/deterministic-simulation",
        "no unseeded randomness; wall clock only where allowlisted",
    ),
    (
        "R3/lossless-wire-casts",
        "wire-format integers convert via try_from, never as",
    ),
    (
        "R4/invariant-inventory",
        "debug_asserts and sentinels registered in INVARIANTS.md",
    ),
    (
        "R5/no-thread-sleep",
        "no thread::sleep outside the justified allowlist",
    ),
    (
        "R6/doc-example-coverage",
        "rnb-core pub fns show a doc example",
    ),
    (
        "R7/serving-path-clone",
        "no allocation-by-copy reachable from the serving roots",
    ),
    (
        "R8/must-use-planner",
        "pure rnb-cover planner entry points carry #[must_use]",
    ),
    (
        "R9/transitive-panic-freedom",
        "no panic reachable from the serving roots",
    ),
    (
        "R10/lock-discipline",
        "no lock guard live across another lock or socket I/O",
    ),
];

/// R7/R9 roots on the store side plus the client's batched read and
/// write paths. `serve_connection` is the protocol loop every request
/// flows through; `get_multi`/`get_multi_with` are the store's batched
/// read entry points and `set_multi` the batched write entry point;
/// `multi_get` is the client-side plan→fetch→writeback driver and
/// `multi_set` its write-side sibling (plan→burst).
pub const CLONE_ROOTS: &[(&str, &str)] = &[
    ("crates/rnb-store/src/server.rs", "serve_connection"),
    ("crates/rnb-store/src/server.rs", "serve_burst"),
    ("crates/rnb-store/src/poller.rs", "sweep"),
    ("crates/rnb-client/src/client.rs", "multi_get"),
    ("crates/rnb-client/src/client.rs", "multi_set"),
    ("crates/rnb-store/src/store.rs", "set_multi"),
];

/// Allocation-by-copy calls R7 forbids in the serving closure.
pub const CLONE_PATTERNS: &[&str] = &[".clone()", ".cloned()", ".to_vec()", ".to_owned()"];

/// `(file, fn, reason)` triples excused from R7. Same hygiene as the
/// other allowlists: an entry whose function left the serving closure or
/// no longer copies is reported stale.
pub const CLONE_ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "crates/rnb-client/src/client.rs",
        "multi_get",
        "output materialization: the per-item result Vec owns its values, and \
         duplicate requested items each need an owned copy of the shared hit",
    ),
    (
        "crates/rnb-store/src/client.rs",
        "recv_gets",
        "duplicate requested keys each receive an owned copy of the VALUE \
         payload; unique-key requests always take the move path",
    ),
    (
        "crates/rnb-store/src/shard.rs",
        "replica_copy",
        "hot-shard promotion snapshots the primary by deep-copying its index, \
         node arena, and free list; the copy is the point. Runs once per \
         promotion (amortised over a whole access window), never per request",
    ),
    (
        "crates/rnb-store/src/shard.rs",
        "clock_handle",
        "Clock is an Arc-backed handle; cloning it shares the timeline (no \
         data copy) so the hot shard's op log stamps ticks from the same \
         source as the shard it replicates. Promotion-time only",
    ),
];

/// R9 roots: the serving closure entry points held to transitive
/// panic-freedom.
pub const PANIC_ROOTS: &[(&str, &str)] = &[
    ("crates/rnb-store/src/server.rs", "serve_connection"),
    ("crates/rnb-store/src/server.rs", "serve_burst"),
    ("crates/rnb-store/src/poller.rs", "sweep"),
    ("crates/rnb-store/src/store.rs", "get_multi"),
    ("crates/rnb-store/src/store.rs", "get_multi_with"),
    ("crates/rnb-store/src/store.rs", "set_multi"),
    ("crates/rnb-store/src/store.rs", "set_multi_with"),
    ("crates/rnb-client/src/client.rs", "multi_get"),
    ("crates/rnb-client/src/client.rs", "multi_set"),
];

/// What R9 hunts in the closure: the R1 panic family plus the slice
/// helpers that panic on bad lengths. (Bare `x[i]` indexing is a known
/// blind spot — see README "Static analysis".)
pub const TRANSITIVE_PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    ".split_at(",
    ".split_at_mut(",
    ".copy_from_slice(",
];

/// `(file, fn, pattern, reason)` invariants registered with R9: sites in
/// the serving closure where the panic condition is statically impossible
/// and the reason says why. A row whose site disappeared is stale.
pub const PANIC_INVARIANT_REGISTRY: &[(&str, &str, &str, &str)] = &[
    (
        "crates/rnb-hash/src/mix.rs",
        "read_u64_le",
        ".unwrap()",
        "try_into on the 8-byte slice `bytes[offset..offset + 8]` cannot fail: \
         the length is fixed by the range; out-of-bounds offsets are excluded \
         by xxh64's stripe loop bound",
    ),
    (
        "crates/rnb-hash/src/mix.rs",
        "read_u32_le",
        ".unwrap()",
        "try_into on the 4-byte slice `bytes[offset..offset + 4]` cannot fail, \
         same argument as read_u64_le",
    ),
    (
        "crates/rnb-hash/src/rch.rs",
        "replicas_into",
        "unreachable!(",
        "a full continuum lap visits every server, and `want` is clamped to \
         `ring.num_servers()` above, so the walk always gathers `want` unique \
         servers before the iterator ends",
    ),
    (
        "crates/rnb-hash/src/rendezvous.rs",
        "score",
        ".copy_from_slice(",
        "both copies fill fixed halves of a `[u8; 16]` with 8-byte \
         `to_le_bytes` arrays; the lengths match by construction",
    ),
    (
        "crates/rnb-store/src/shard.rs",
        "set_full_hashed",
        ".copy_from_slice(",
        "the in-place overwrite arm is guarded by `buf.len() == value.len()` \
         in the same match pattern",
    ),
    (
        "crates/rnb-store/src/replicated.rs",
        "outcome_mismatch",
        "unreachable!(",
        "each WriteOp variant maps to exactly one WriteOutcome variant in \
         `Dispatch::dispatch_mut` (Set→Set, Add/Replace→Conditional, Cas→Cas, \
         Arith→Arith, Delete→Deleted), and every `into_*` accessor is called \
         by the store wrapper that built the matching WriteOp variant, so the \
         mismatch arm is statically dead; reaching it means dispatch itself \
         was edited wrong, which the oracle proptest catches first",
    ),
    (
        "crates/rnb-store/src/replicated.rs",
        "take_result",
        "unreachable!(",
        "`WriteSlot::deliver` stores the outcome *before* the release-store \
         of `done`, and `take_result` is only called after an acquire-load of \
         `done` observed `true`, so the outcome slot cannot be empty — the \
         release/acquire pair orders the two writes",
    ),
    (
        "crates/rnb-core/src/bundler.rs",
        "merge_by_server",
        ".split_at_mut(",
        "`i` comes from `1..transactions.len()` of the enclosing loop, so it \
         is a valid split point of the same vector",
    ),
];

/// R8 scope: the pure planner crate.
pub const MUST_USE_PATH: &str = "crates/rnb-cover/src/";

/// Free functions in `rnb-cover` that compute a cover and return it;
/// dropping the result is always a bug, so `#[must_use]` is mandatory.
pub const MUST_USE_FREE_FNS: &[&str] = &[
    "greedy_cover",
    "greedy_cover_reference",
    "lazy_greedy_cover",
    "solve_exact",
];

/// Result types whose `&self` accessors must be `#[must_use]`.
pub const MUST_USE_SELF_TYPES: &[&str] = &["PlannedCover", "CoverSolution"];

/// R10 scope: every non-test file of the store crate.
pub const LOCK_DISCIPLINE_PATH: &str = "crates/rnb-store/src/";

/// Socket-level reads/writes that must never run under a lock guard:
/// they block for network time, turning a shard mutex into a
/// tail-latency amplifier for every other connection.
pub const SOCKET_IO_PATTERNS: &[&str] = &[
    "write_all(",
    ".flush(",
    "read_exact(",
    "read_until(",
    "read_line_into(",
    "read_data_block_into(",
    "read_to_end(",
    "recv_from(",
    "send_to(",
];

/// `(file, fn, reason)` triples excused from R10, with staleness
/// checking. Empty today: the store has no justified nested-lock or
/// lock-across-I/O site, and the bar for adding one is high.
pub const LOCK_ALLOWLIST: &[(&str, &str, &str)] = &[];

const LOCK_PATTERN: &str = ".lock()";

/// Every non-test occurrence of `pattern` within `start..end`.
fn occurrences_between<'a>(
    file: &'a SourceFile,
    pattern: &'a str,
    start: usize,
    end: usize,
) -> impl Iterator<Item = usize> + 'a {
    let mut search = start;
    std::iter::from_fn(move || {
        while search < end {
            let found = file.scrubbed[search..end].find(pattern)?;
            let offset = search + found;
            search = offset + pattern.len();
            if !file.in_test_code(offset) {
                return Some(offset);
            }
        }
        None
    })
}

/// Shared driver for R7 and R9: scan every function reachable from
/// `roots` for `patterns`, excusing `(file, fn[, pattern])` keys present
/// in `exempt`, and report both missing roots and stale exemptions.
/// `exempt` keys are `file::fn` (R7) or `file::fn::pattern` (R9),
/// produced by the caller.
#[allow(clippy::too_many_arguments)]
fn check_reachable_patterns(
    rule: &'static str,
    files: &[SourceFile],
    graph: &CallGraph,
    roots: &[(&str, &str)],
    patterns: &[&str],
    exempt: &BTreeMap<String, String>,
    per_pattern_keys: bool,
    advice: &str,
) -> Vec<Violation> {
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let (reach, missing) = graph.reachable(roots);
    let mut out: Vec<Violation> = missing
        .into_iter()
        .map(|(file, name)| Violation {
            rule,
            file: file.clone(),
            line: 0,
            message: format!(
                "rule root `{file}::{name}` not found: the function was renamed \
                 or moved, so the rule is silently disabled; update the root \
                 list in xtask/src/rules.rs"
            ),
        })
        .collect();
    let mut live_exemptions: BTreeSet<&str> = BTreeSet::new();
    for &i in &reach {
        let f = &graph.fns[i];
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        let Some(file) = by_path.get(f.file.as_str()) else {
            continue;
        };
        for pattern in patterns {
            for offset in occurrences_between(file, pattern, body_start, body_end) {
                let key = if per_pattern_keys {
                    format!("{}::{}::{}", f.file, f.name, pattern)
                } else {
                    format!("{}::{}", f.file, f.name)
                };
                if let Some((stored, _reason)) = exempt.get_key_value(&key) {
                    live_exemptions.insert(stored);
                    continue;
                }
                out.push(Violation {
                    rule,
                    file: f.file.clone(),
                    line: file.line_of(offset),
                    message: format!(
                        "`{pattern}` in `{}`, which is reachable from the serving \
                         roots; {advice} (`{}`)",
                        f.name,
                        file.excerpt(offset)
                    ),
                });
            }
        }
    }
    for key in exempt.keys() {
        if !live_exemptions.contains(key.as_str()) {
            out.push(Violation {
                rule,
                file: key.clone(),
                line: 0,
                message: format!(
                    "stale exemption `{key}`: the function left the serving \
                     closure or the flagged call is gone; remove the entry \
                     from xtask/src/rules.rs"
                ),
            });
        }
    }
    out
}

/// R7: nothing reachable from the serving roots may copy-allocate.
pub fn check_serving_clone(files: &[SourceFile], graph: &CallGraph) -> Vec<Violation> {
    check_serving_clone_with(files, graph, CLONE_ROOTS, CLONE_ALLOWLIST)
}

/// [`check_serving_clone`] against explicit roots/allowlist (fixtures).
pub fn check_serving_clone_with(
    files: &[SourceFile],
    graph: &CallGraph,
    roots: &[(&str, &str)],
    allowlist: &[(&str, &str, &str)],
) -> Vec<Violation> {
    let exempt: BTreeMap<String, String> = allowlist
        .iter()
        .map(|(f, n, why)| (format!("{f}::{n}"), (*why).to_string()))
        .collect();
    check_reachable_patterns(
        "R7/serving-path-clone",
        files,
        graph,
        roots,
        CLONE_PATTERNS,
        &exempt,
        false,
        "restructure to borrow or move instead, or add an allowlist entry \
         with a written reason in xtask/src/rules.rs",
    )
}

/// R9: nothing reachable from the serving roots may panic.
pub fn check_transitive_panic(files: &[SourceFile], graph: &CallGraph) -> Vec<Violation> {
    check_transitive_panic_with(files, graph, PANIC_ROOTS, PANIC_INVARIANT_REGISTRY)
}

/// [`check_transitive_panic`] against explicit roots/registry (fixtures).
pub fn check_transitive_panic_with(
    files: &[SourceFile],
    graph: &CallGraph,
    roots: &[(&str, &str)],
    registry: &[(&str, &str, &str, &str)],
) -> Vec<Violation> {
    let exempt: BTreeMap<String, String> = registry
        .iter()
        .map(|(f, n, p, why)| (format!("{f}::{n}::{p}"), (*why).to_string()))
        .collect();
    check_reachable_patterns(
        "R9/transitive-panic-freedom",
        files,
        graph,
        roots,
        TRANSITIVE_PANIC_PATTERNS,
        &exempt,
        true,
        "propagate a Result, prove the invariant and register it in \
         PANIC_INVARIANT_REGISTRY (xtask/src/rules.rs) with a written reason",
    )
}

/// Does the contiguous attribute block above `decl_offset`'s line contain
/// `#[attr…]`? Doc comments are skipped; the walk reads raw text because
/// the scrubber blanks nothing in attribute lines but doc text above may
/// hold arbitrary content.
fn has_attr_above(file: &SourceFile, decl_offset: usize, attr: &str) -> bool {
    let needle = format!("#[{attr}");
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let mut i = file.line_of(decl_offset) - 1;
    while i > 0 {
        i -= 1;
        let above = raw_lines.get(i).map_or("", |l| l.trim());
        if above.starts_with("#[") || above.starts_with("#!") {
            if above.contains(&needle) {
                return true;
            }
            continue;
        }
        if above.starts_with("///") || above.starts_with("//") {
            continue;
        }
        break;
    }
    false
}

/// R8: pure planner entry points in `rnb-cover` carry `#[must_use]`.
///
/// Covered: the free cover solvers ([`MUST_USE_FREE_FNS`]), every
/// `Planner` method named `plan*`/`solve*`, and every value-returning
/// `&self` accessor of the result types ([`MUST_USE_SELF_TYPES`]).
pub fn check_must_use(files: &[SourceFile], graph: &CallGraph) -> Vec<Violation> {
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut out = Vec::new();
    for f in &graph.fns {
        if !f.file.starts_with(MUST_USE_PATH) {
            continue;
        }
        let Some(file) = by_path.get(f.file.as_str()) else {
            continue;
        };
        let sig = f.sig_text(file);
        let returns_value = sig.contains("->");
        let required = match f.self_ty.as_deref() {
            None => MUST_USE_FREE_FNS.contains(&f.name.as_str()) && returns_value,
            Some("Planner") => {
                (f.name.starts_with("plan") || f.name.starts_with("solve")) && returns_value
            }
            Some(ty) => {
                MUST_USE_SELF_TYPES.contains(&ty)
                    && sig.contains("&self")
                    && !sig.contains("&mut self")
                    && returns_value
            }
        };
        if required && !has_attr_above(file, f.decl_offset, "must_use") {
            out.push(Violation {
                rule: "R8/must-use-planner",
                file: f.file.clone(),
                line: file.line_of(f.decl_offset),
                message: format!(
                    "planner entry point `{}` lacks `#[must_use]`: computing a \
                     cover and dropping it is always a bug; add the attribute",
                    f.name
                ),
            });
        }
    }
    out
}

/// The live scope of the `.lock()` guard created at `lock_off`:
/// byte range `(start, end)` of the code during which the guard may
/// still be held.
///
/// * `let g = x.lock();` — a named guard lives from the `;` to the end
///   of the enclosing block (`}`), the lexical over-approximation of its
///   drop point.
/// * Any other use is a temporary: the guard lives to the end of the
///   statement, extended through a trailing block when the expression
///   heads one (`for x in m.lock().iter() { … }` holds the guard for
///   the whole loop).
fn guard_scope(file: &SourceFile, lock_off: usize) -> (usize, usize) {
    let s = file.scrubbed.as_bytes();
    let after = lock_off + LOCK_PATTERN.len();
    let mut j = after;
    while j < s.len() && s[j].is_ascii_whitespace() {
        j += 1;
    }
    let stmt_start = file.scrubbed[..lock_off]
        .rfind([';', '{', '}'])
        .map_or(0, |p| p + 1);
    let binds = j < s.len()
        && s[j] == b';'
        && file.scrubbed[stmt_start..lock_off]
            .trim_start()
            .starts_with("let ");
    if binds {
        // From the `;` to the `}` closing the enclosing block.
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < s.len() {
            match s[k] {
                b'{' => depth += 1,
                b'}' => {
                    if depth == 0 {
                        return (j + 1, k);
                    }
                    depth -= 1;
                }
                _ => {}
            }
            k += 1;
        }
        (j + 1, s.len())
    } else {
        // Temporary: to the statement's `;`, through a trailing block.
        let mut paren = 0i32;
        let mut brace = 0i32;
        let mut tail_block = false;
        let mut k = after;
        while k < s.len() {
            match s[k] {
                b'(' => paren += 1,
                b')' => paren = (paren - 1).max(0),
                b'{' => {
                    if paren == 0 && brace == 0 {
                        tail_block = true;
                    }
                    brace += 1;
                }
                b'}' => {
                    if brace == 0 {
                        return (after, k);
                    }
                    brace -= 1;
                    if brace == 0 && tail_block {
                        return (after, k);
                    }
                }
                b';' if paren == 0 && brace == 0 => return (after, k),
                _ => {}
            }
            k += 1;
        }
        (after, s.len())
    }
}

/// R10: in `rnb-store`, no lock guard's live scope may contain another
/// `.lock()` (nested acquisition → ordering hazard) or socket I/O
/// (network time under a shard mutex → tail-latency amplifier).
pub fn check_lock_discipline(files: &[SourceFile], graph: &CallGraph) -> Vec<Violation> {
    check_lock_discipline_with(files, graph, LOCK_ALLOWLIST)
}

/// [`check_lock_discipline`] against an explicit allowlist (fixtures).
pub fn check_lock_discipline_with(
    files: &[SourceFile],
    graph: &CallGraph,
    allowlist: &[(&str, &str, &str)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut live_allow: BTreeSet<(&str, &str)> = BTreeSet::new();
    for file in files {
        if !file.rel_path.starts_with(LOCK_DISCIPLINE_PATH) {
            continue;
        }
        for lock_off in
            occurrences_between(file, LOCK_PATTERN, 0, file.scrubbed.len()).collect::<Vec<_>>()
        {
            let (start, end) = guard_scope(file, lock_off);
            let mut offenders: Vec<(usize, &str)> = Vec::new();
            for inner in occurrences_between(file, ".lock(", start, end) {
                offenders.push((inner, "another `.lock()`"));
            }
            for pattern in SOCKET_IO_PATTERNS {
                for inner in occurrences_between(file, pattern, start, end) {
                    offenders.push((inner, "socket I/O"));
                }
            }
            if offenders.is_empty() {
                continue;
            }
            let holder = graph
                .enclosing_fn(&file.rel_path, lock_off)
                .map(|f| f.name.as_str())
                .unwrap_or("?");
            if let Some((f, n, _)) = allowlist
                .iter()
                .find(|(f, n, _)| *f == file.rel_path && *n == holder)
            {
                live_allow.insert((f, n));
                continue;
            }
            for (inner, what) in offenders {
                out.push(Violation {
                    rule: "R10/lock-discipline",
                    file: file.rel_path.clone(),
                    line: file.line_of(inner),
                    message: format!(
                        "{what} inside the scope of the lock guard taken at \
                         line {} (in `{holder}`); release the guard first — \
                         no lock is held across another lock or the network \
                         (`{}`)",
                        file.line_of(lock_off),
                        file.excerpt(inner)
                    ),
                });
            }
        }
    }
    for (f, n, _) in allowlist {
        if !live_allow.contains(&(*f, *n)) {
            out.push(Violation {
                rule: "R10/lock-discipline",
                file: (*f).to_string(),
                line: 0,
                message: format!(
                    "stale lock allowlist entry `{f}::{n}`: no guarded-scope \
                     conflict remains; remove the entry from xtask/src/rules.rs"
                ),
            });
        }
    }
    out
}

/// R0: the lint's own registries must be well-formed — unique rule ids
/// and unique keys in every allowlist/registry.
pub fn self_check() -> Vec<Violation> {
    let lists: Vec<(&str, Vec<String>)> = vec![
        (
            "RULES",
            RULES.iter().map(|(id, _)| (*id).to_string()).collect(),
        ),
        (
            "TIME_ALLOWLIST",
            TIME_ALLOWLIST
                .iter()
                .map(|(f, _)| (*f).to_string())
                .collect(),
        ),
        (
            "SLEEP_ALLOWLIST",
            SLEEP_ALLOWLIST
                .iter()
                .map(|(f, _)| (*f).to_string())
                .collect(),
        ),
        (
            "DOC_EXAMPLE_ALLOWLIST",
            DOC_EXAMPLE_ALLOWLIST
                .iter()
                .map(|(f, n, _)| format!("{f}::{n}"))
                .collect(),
        ),
        (
            "CLONE_ALLOWLIST",
            CLONE_ALLOWLIST
                .iter()
                .map(|(f, n, _)| format!("{f}::{n}"))
                .collect(),
        ),
        (
            "PANIC_INVARIANT_REGISTRY",
            PANIC_INVARIANT_REGISTRY
                .iter()
                .map(|(f, n, p, _)| format!("{f}::{n}::{p}"))
                .collect(),
        ),
        (
            "LOCK_ALLOWLIST",
            LOCK_ALLOWLIST
                .iter()
                .map(|(f, n, _)| format!("{f}::{n}"))
                .collect(),
        ),
    ];
    self_check_with(&lists)
}

/// [`self_check`] against explicit `(list name, keys)` pairs (fixtures).
pub fn self_check_with(lists: &[(&str, Vec<String>)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (name, keys) in lists {
        let mut seen = BTreeSet::new();
        for key in keys {
            if !seen.insert(key.as_str()) {
                out.push(Violation {
                    rule: "R0/lint-self-check",
                    file: "xtask/src/rules.rs".to_string(),
                    line: 0,
                    message: format!(
                        "duplicate key `{key}` in {name}: the second entry is \
                         dead and hides edits to the first; remove one"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::Inventory;

    fn serving(src: &str) -> SourceFile {
        SourceFile::new("crates/rnb-store/src/server.rs", src)
    }

    // -------- R1 --------

    #[test]
    fn r1_detects_each_panic_pattern() {
        for line in [
            "fn f() { x.unwrap(); }",
            "fn f() { x.expect(\"boom\"); }",
            "fn f() { panic!(\"boom\"); }",
            "fn f() { unreachable!(); }",
            "fn f() { todo!(); }",
            "fn f() { unimplemented!(); }",
        ] {
            let v = check_panic_free(&serving(line));
            assert_eq!(v.len(), 1, "expected one finding for {line:?}: {v:?}");
            assert_eq!(v[0].rule, "R1/panic-free-serving-path");
            assert_eq!(v[0].line, 1);
        }
    }

    #[test]
    fn r1_ignores_tests_comments_strings_and_other_files() {
        let masked = serving(
            "fn ok() -> Result<(), E> { Ok(()) }\n\
             // a comment saying .unwrap()\n\
             /// docs: call .unwrap() freely\n\
             fn s() { let m = \"panic!(\"; }\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { x.unwrap(); panic!(\"fine\"); }\n}\n",
        );
        assert_eq!(check_panic_free(&masked), Vec::new());
        let elsewhere = SourceFile::new("crates/rnb-sim/src/lru.rs", "fn f() { x.unwrap(); }");
        assert_eq!(check_panic_free(&elsewhere), Vec::new());
    }

    // -------- R2 --------

    #[test]
    fn r2_detects_unseeded_randomness_everywhere() {
        for line in [
            "fn f() { let mut r = rand::rng(); }",
            "fn f() { let mut r = thread_rng(); }",
            "fn f() { let r = StdRng::from_entropy(); }",
            "fn f() { let r = StdRng::from_os_rng(); }",
        ] {
            let f = SourceFile::new("crates/rnb-sim/src/cluster.rs", line);
            let v = check_determinism(&f);
            assert_eq!(v.len(), 1, "expected one finding for {line:?}");
        }
        // Even inside allowlisted files: the time allowlist never excuses
        // unseeded randomness.
        let f = SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn f() { let mut r = thread_rng(); }",
        );
        assert_eq!(check_determinism(&f).len(), 1);
    }

    #[test]
    fn r2_flags_wallclock_outside_allowlist_only() {
        let outside = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }",
        );
        assert_eq!(check_determinism(&outside).len(), 2);
        let inside = SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(check_determinism(&inside), Vec::new());
        let bench = SourceFile::new(
            "crates/rnb-bench/src/bin/ext_scale.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(check_determinism(&bench), Vec::new());
    }

    #[test]
    fn r2_flags_reintroduced_wallclock_in_clock_injected_files() {
        // shard.rs and loadgen.rs earned their way off the allowlist when
        // the injected Clock landed; a reintroduced direct read must fail
        // the lint from now on.
        for path in [
            "crates/rnb-store/src/shard.rs",
            "crates/rnb-store/src/loadgen.rs",
            "crates/rnb-store/src/server.rs",
            "crates/rnb-store/src/store.rs",
        ] {
            let f = SourceFile::new(path, "fn f() { let t = Instant::now(); }");
            let v = check_determinism(&f);
            assert_eq!(v.len(), 1, "{path} must not read the wall clock");
            assert_eq!(v[0].rule, "R2/deterministic-simulation");
            assert!(v[0].message.contains("outside the time allowlist"));
        }
    }

    #[test]
    fn r2_seeded_randomness_is_fine() {
        let f = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f(seed: u64) { let mut r = StdRng::seed_from_u64(seed); }",
        );
        assert_eq!(check_determinism(&f), Vec::new());
    }

    #[test]
    fn r2_stale_allowlist_entries_are_flagged() {
        // None of these files read the clock, so every entry is stale.
        let files = vec![SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn quiet() {}",
        )];
        let v = check_stale_allowlist(&files);
        assert_eq!(v.len(), TIME_ALLOWLIST.len());
        // One real use marks exactly that entry live.
        let files = vec![SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn f() { let t = Instant::now(); }",
        )];
        let v = check_stale_allowlist(&files);
        assert_eq!(v.len(), TIME_ALLOWLIST.len() - 1);
        assert!(v.iter().all(|v| !v.file.contains("clock")));
    }

    // -------- R5 --------

    #[test]
    fn r5_detects_sleep_in_non_test_code() {
        let f = SourceFile::new(
            "crates/rnb-store/src/bin/rnb-stored.rs",
            "fn f() { std::thread::sleep(std::time::Duration::from_secs(1)); }",
        );
        let v = check_no_sleep(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R5/no-thread-sleep");
        // Bare `thread::sleep` (pre-imported) is the same pattern.
        let bare = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f() { thread::sleep(d); }",
        );
        assert_eq!(check_no_sleep(&bare).len(), 1);
    }

    #[test]
    fn r5_ignores_tests_comments_and_allowlisted_files() {
        let test_code = SourceFile::new(
            "crates/rnb-store/src/shard.rs",
            "#[cfg(test)]\nmod tests { fn t() { std::thread::sleep(d); } }",
        );
        assert_eq!(check_no_sleep(&test_code), Vec::new());
        let comment = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "// never call thread::sleep here\nfn f() {}",
        );
        assert_eq!(check_no_sleep(&comment), Vec::new());
        let allowlisted = SourceFile::new(
            "crates/rnb-bench/src/bin/ext_udp.rs",
            "fn f() { std::thread::sleep(d); }",
        );
        assert_eq!(check_no_sleep(&allowlisted), Vec::new());
    }

    #[test]
    fn r5_stale_sleep_allowlist_entries_are_flagged() {
        // No file sleeps → every allowlist entry is stale.
        let files = vec![SourceFile::new(
            "crates/rnb-bench/src/bin/ext_udp.rs",
            "fn quiet() {}",
        )];
        let v = check_stale_sleep_allowlist(&files);
        assert_eq!(v.len(), SLEEP_ALLOWLIST.len());
        assert!(v[0].message.contains("stale"));
        // A real sleep marks the entry live.
        let files = vec![SourceFile::new(
            "crates/rnb-bench/src/bin/ext_udp.rs",
            "fn f() { std::thread::sleep(d); }",
        )];
        assert_eq!(check_stale_sleep_allowlist(&files), Vec::new());
    }

    // -------- R3 --------

    #[test]
    fn r3_detects_lossy_int_casts_in_wire_code() {
        let f = SourceFile::new(
            "crates/rnb-store/src/protocol.rs",
            "fn f(n: u64) -> u16 { n as u16 }",
        );
        let v = check_wire_casts(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R3/lossless-wire-casts");
    }

    #[test]
    fn r3_allows_float_casts_nontarget_files_and_tests() {
        let float = SourceFile::new(
            "crates/rnb-store/src/protocol.rs",
            "fn f(n: u64) -> f64 { n as f64 }",
        );
        assert_eq!(check_wire_casts(&float), Vec::new());
        let elsewhere = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f(n: u64) -> u16 { n as u16 }",
        );
        assert_eq!(check_wire_casts(&elsewhere), Vec::new());
        let test_code = SourceFile::new(
            "crates/rnb-store/src/protocol.rs",
            "#[cfg(test)]\nmod tests { fn f(n: u64) -> u16 { n as u16 } }",
        );
        assert_eq!(check_wire_casts(&test_code), Vec::new());
    }

    // -------- R4 --------

    fn inventory(rows: &str) -> Inventory {
        Inventory::parse(rows).expect("fixture inventory parses")
    }

    #[test]
    fn r4_requires_registration_of_debug_assert_messages() {
        let f = SourceFile::new(
            "crates/rnb-cover/src/bitset.rs",
            "fn f() { debug_assert!(i < n, \"bit out of universe\"); }",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(missing, Vec::new());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].pattern, "bit out of universe");

        let empty = inventory("| file | kind | pattern | rationale |\n|---|---|---|---|\n");
        assert_eq!(check_inventory(&sites, &empty).len(), 1);

        let good = inventory(
            "| crates/rnb-cover/src/bitset.rs | debug_assert | bit out of universe | checked |",
        );
        assert_eq!(check_inventory(&sites, &good), Vec::new());
    }

    #[test]
    fn r4_flags_messageless_debug_asserts() {
        let f = SourceFile::new(
            "crates/rnb-cover/src/bitset.rs",
            "fn f() { debug_assert_eq!(a.len, b.len); }",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(sites, Vec::new());
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("without a message"));
    }

    #[test]
    fn r4_extracts_messages_from_eq_and_multiline_forms() {
        let f = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f() {\n    debug_assert_eq!(\n        a(x, y),\n        b,\n        \
             \"accounting reconciles\"\n    );\n}",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(missing, Vec::new());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].pattern, "accounting reconciles");
    }

    #[test]
    fn r4_registers_sentinels_and_flags_stale_rows() {
        let f = SourceFile::new(
            "crates/rnb-sim/src/lru.rs",
            "const NIL: usize = usize::MAX;\n",
        );
        let (sites, _) = collect_invariant_sites(&f);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, Kind::Sentinel);

        let unregistered = inventory("| a | sentinel | u32::MAX | n/a |");
        let v = check_inventory(&sites, &unregistered);
        // One unregistered site + one stale row.
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.message.contains("unregistered")));
        assert!(v.iter().any(|v| v.message.contains("stale")));

        let good =
            inventory("| crates/rnb-sim/src/lru.rs | sentinel | usize::MAX | freelist NIL |");
        assert_eq!(check_inventory(&sites, &good), Vec::new());
    }

    // -------- R6 --------

    fn core(src: &str) -> SourceFile {
        SourceFile::new("crates/rnb-core/src/plan.rs", src)
    }

    #[test]
    fn r6_flags_example_less_pub_fns() {
        let f = core(
            "/// Does a thing.\n\
             pub fn undocumented() {}\n\
             pub const fn bare() {}\n",
        );
        let v = check_doc_examples_with(&f, &[]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "R6/doc-example-coverage"));
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("undocumented"));
        assert!(v[1].message.contains("bare"));
    }

    #[test]
    fn r6_accepts_fenced_examples_through_attributes() {
        let f = core(
            "/// Sums.\n\
             ///\n\
             /// ```\n\
             /// assert_eq!(1 + 1, 2);\n\
             /// ```\n\
             #[must_use]\n\
             pub fn documented(a: u32) -> u32 { a }\n",
        );
        assert_eq!(check_doc_examples_with(&f, &[]), Vec::new());
    }

    #[test]
    fn r6_ignores_non_core_files_private_fns_and_tests() {
        let elsewhere = SourceFile::new("crates/rnb-sim/src/lru.rs", "pub fn f() {}\n");
        assert_eq!(check_doc_examples_with(&elsewhere, &[]), Vec::new());
        let non_public = core(
            "fn private() {}\n\
             pub(crate) fn internal() {}\n\
             // a comment mentioning pub fn fake()\n\
             const S: &str = \"pub fn in_a_string()\";\n\
             #[cfg(test)]\n\
             mod tests { pub fn helper() {} }\n",
        );
        assert_eq!(check_doc_examples_with(&non_public, &[]), Vec::new());
    }

    #[test]
    fn r6_allowlist_excuses_and_goes_stale() {
        let f = core("/// Plain doc.\npub fn excused() {}\n");
        let allow: &[(&str, &str, &str)] = &[("crates/rnb-core/src/plan.rs", "excused", "fixture")];
        assert_eq!(check_doc_examples_with(&f, allow), Vec::new());
        // Live while the fn lacks an example…
        assert_eq!(check_stale_doc_allowlist_with(&[f], allow), Vec::new());
        // …stale once it gains one (or disappears).
        let fixed = core("/// ```\n/// // now shown\n/// ```\npub fn excused() {}\n");
        let v = check_stale_doc_allowlist_with(&[fixed], allow);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn r4_ignores_test_code_sites() {
        let f = SourceFile::new(
            "crates/rnb-hash/src/jump.rs",
            "#[cfg(test)]\nmod tests { fn f() { let k = u64::MAX; debug_assert!(true); } }",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(sites, Vec::new());
        assert_eq!(missing, Vec::new());
    }

    // -------- R7 --------

    const SERVE_ROOT: &[(&str, &str)] = &[("crates/rnb-store/src/server.rs", "serve_connection")];

    #[test]
    fn r7_reintroduced_clone_in_serve_connection_fails() {
        // The acceptance fixture: a clone() put back anywhere in the
        // serving closure — here one call away from the root — must fail.
        let files = vec![serving(
            "fn serve_connection() { let req = parse(); handle(req); }\n\
             fn handle(req: Req) { let owned = req.data.clone(); drop(owned); }\n\
             fn parse() -> Req { Req }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_serving_clone_with(&files, &graph, SERVE_ROOT, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R7/serving-path-clone");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("handle"));
    }

    #[test]
    fn r7_clean_serving_path_passes() {
        let files = vec![serving(
            "fn serve_connection(buf: &mut Vec<u8>) { fill(buf); }\n\
             fn fill(buf: &mut Vec<u8>) { buf.extend_from_slice(b\"ok\"); }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(
            check_serving_clone_with(&files, &graph, SERVE_ROOT, &[]),
            Vec::new()
        );
    }

    #[test]
    fn r7_ignores_unreachable_fns_and_test_code() {
        let files = vec![serving(
            "fn serve_connection() { fast(); }\n\
             fn fast() {}\n\
             fn cold_admin_path(x: &[u8]) { let v = x.to_vec(); drop(v); }\n\
             #[cfg(test)]\n\
             mod tests { fn t(x: &Y) { let v = x.clone(); } }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(
            check_serving_clone_with(&files, &graph, SERVE_ROOT, &[]),
            Vec::new()
        );
    }

    #[test]
    fn r7_allowlist_excuses_and_goes_stale() {
        let allow: &[(&str, &str, &str)] = &[(
            "crates/rnb-store/src/server.rs",
            "serve_connection",
            "fixture reason",
        )];
        let dirty = vec![serving(
            "fn serve_connection(buf: &[u8]) { let v = buf.to_owned(); drop(v); }\n",
        )];
        let graph = CallGraph::build(&dirty);
        assert_eq!(
            check_serving_clone_with(&dirty, &graph, SERVE_ROOT, allow),
            Vec::new()
        );
        // Once the copy disappears, the unused entry itself is the finding.
        let clean = vec![serving("fn serve_connection() {}\n")];
        let graph = CallGraph::build(&clean);
        let v = check_serving_clone_with(&clean, &graph, SERVE_ROOT, allow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn r7_reintroduced_clone_in_write_burst_loop_fails() {
        // The write-path acceptance fixture: `multi_set` is a clone
        // root, so a value copy smuggled back into the burst loop (the
        // pre-pooled-planner idiom was `value.to_vec()` per replica)
        // must fail even when it hides one call away from the root.
        let files = vec![SourceFile::new(
            "crates/rnb-client/src/client.rs",
            "pub fn multi_set(&mut self, entries: &[(u64, Vec<u8>)]) { \
             let plan = self.batcher.plan(entries); run_bursts(&plan); }\n\
             fn run_bursts(plan: &Plan) { for g in &plan.groups { \
             let owned = g.value.to_vec(); send(owned); } }\n",
        )];
        let graph = CallGraph::build(&files);
        let root: &[(&str, &str)] = &[("crates/rnb-client/src/client.rs", "multi_set")];
        let v = check_serving_clone_with(&files, &graph, root, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R7/serving-path-clone");
        assert!(v[0].message.contains("run_bursts"));
    }

    #[test]
    fn r7_reintroduced_clone_in_set_multi_fails() {
        // Store side: `set_multi` grouping must not copy keys per entry
        // (the scratch interns positions, not bytes).
        let files = vec![SourceFile::new(
            "crates/rnb-store/src/store.rs",
            "pub fn set_multi(&self, entries: &[Entry]) { \
             for e in entries { self.stage(e.key.to_owned()); } }\n",
        )];
        let graph = CallGraph::build(&files);
        let root: &[(&str, &str)] = &[("crates/rnb-store/src/store.rs", "set_multi")];
        let v = check_serving_clone_with(&files, &graph, root, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn r7_renamed_root_is_reported_not_silently_dropped() {
        let files = vec![serving("fn serve_conn_v2(x: &Y) { let v = x.clone(); }\n")];
        let graph = CallGraph::build(&files);
        let v = check_serving_clone_with(&files, &graph, SERVE_ROOT, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("not found"));
    }

    // -------- R8 --------

    fn cover(src: &str) -> SourceFile {
        SourceFile::new("crates/rnb-cover/src/greedy.rs", src)
    }

    #[test]
    fn r8_flags_unmarked_planner_entry_points() {
        let files = vec![cover(
            "pub fn greedy_cover(n: usize) -> usize { n }\n\
             impl Planner { pub fn plan_cover(&mut self) -> usize { 0 } }\n\
             impl PlannedCover { pub fn covered(&self) -> usize { 0 } }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_must_use(&files, &graph);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "R8/must-use-planner"));
        assert_eq!(v.iter().map(|x| x.line).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn r8_satisfied_by_attribute_and_tightly_scoped() {
        let files = vec![cover(
            "#[must_use]\n\
             pub fn greedy_cover(n: usize) -> usize { n }\n\
             pub fn helper_not_listed(n: usize) -> usize { n }\n\
             impl Planner { pub fn reset(&mut self) {} }\n\
             impl PlannedCover { pub fn absorb(&mut self, x: usize) -> usize { x } }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(check_must_use(&files, &graph), Vec::new());
        // The same declarations outside rnb-cover are out of scope.
        let elsewhere = vec![SourceFile::new(
            "crates/rnb-core/src/plan.rs",
            "pub fn greedy_cover(n: usize) -> usize { n }\n",
        )];
        let graph = CallGraph::build(&elsewhere);
        assert_eq!(check_must_use(&elsewhere, &graph), Vec::new());
    }

    // -------- R9 --------

    #[test]
    fn r9_transitive_panic_detected_two_hops_out() {
        let files = vec![serving(
            "fn serve_connection() { decode(); }\n\
             fn decode() { verify(); }\n\
             fn verify(header: &[u8]) { let _ = header.split_at(4); }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_transitive_panic_with(&files, &graph, SERVE_ROOT, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R9/transitive-panic-freedom");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("verify"));
    }

    #[test]
    fn r9_clean_result_propagation_passes() {
        let files = vec![serving(
            "fn serve_connection() -> Result<(), E> { decode()?; Ok(()) }\n\
             fn decode() -> Result<(), E> { Err(E) }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(
            check_transitive_panic_with(&files, &graph, SERVE_ROOT, &[]),
            Vec::new()
        );
    }

    #[test]
    fn r9_registered_invariant_excuses_and_goes_stale() {
        let registry: &[(&str, &str, &str, &str)] = &[(
            "crates/rnb-store/src/server.rs",
            "serve_connection",
            ".unwrap()",
            "fixture invariant",
        )];
        let dirty = vec![serving(
            "fn serve_connection(x: Option<u8>) { let _ = x.unwrap(); }\n",
        )];
        let graph = CallGraph::build(&dirty);
        assert_eq!(
            check_transitive_panic_with(&dirty, &graph, SERVE_ROOT, registry),
            Vec::new()
        );
        // The registration is per pattern: a different panic in the same
        // function is still a finding.
        let other_pattern = vec![serving(
            "fn serve_connection(x: Option<u8>) { let _ = x.unwrap(); panic!(\"no\"); }\n",
        )];
        let graph = CallGraph::build(&other_pattern);
        let v = check_transitive_panic_with(&other_pattern, &graph, SERVE_ROOT, registry);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("panic!("));
        // And the row goes stale once the unwrap is gone.
        let clean = vec![serving("fn serve_connection() {}\n")];
        let graph = CallGraph::build(&clean);
        let v = check_transitive_panic_with(&clean, &graph, SERVE_ROOT, registry);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("stale"));
    }

    // -------- R10 --------

    fn store_file(src: &str) -> SourceFile {
        SourceFile::new("crates/rnb-store/src/shard.rs", src)
    }

    #[test]
    fn r10_nested_lock_fails() {
        // The acceptance fixture: a second .lock() while the first guard
        // is still live must fail.
        let files = vec![store_file(
            "impl Shard {\n\
                 fn rebalance(&self) {\n\
                     let a = self.left.lock();\n\
                     let b = self.right.lock();\n\
                     drop((a, b));\n\
                 }\n\
             }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_lock_discipline_with(&files, &graph, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R10/lock-discipline");
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("rebalance"));
        assert!(v[0].message.contains("another `.lock()`"));
    }

    #[test]
    fn r10_combiner_nested_lock_regression_fails() {
        // The hot-shard combiner's cardinal sin, as a fixture: applying
        // a drained batch to the primary while also taking a replica's
        // lock inside the same guard scope. The real `combine` /
        // `catch_up` in replicated.rs keep the two acquisitions in
        // disjoint scopes; this is the regression shape R10 must catch
        // if that structure decays.
        let files = vec![SourceFile::new(
            "crates/rnb-store/src/replicated.rs",
            "impl HotShard {\n\
                 fn combine(&self, primary: &Mutex<Shard>) {\n\
                     let mut shard = primary.lock();\n\
                     for replica in &self.replicas {\n\
                         let mut r = replica.data.lock();\n\
                         r.apply();\n\
                     }\n\
                     drop(shard);\n\
                 }\n\
             }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_lock_discipline_with(&files, &graph, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R10/lock-discipline");
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("combine"));
        assert!(v[0].message.contains("another `.lock()`"));
    }

    #[test]
    fn r10_socket_io_under_guard_fails() {
        let files = vec![store_file(
            "fn reply(&self, w: &mut W) {\n\
                 let g = self.map.lock();\n\
                 w.write_all(g.bytes());\n\
             }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_lock_discipline_with(&files, &graph, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("socket I/O"));
    }

    #[test]
    fn r10_guard_dropped_before_io_passes() {
        // The inner block ends the named guard's scope, so the write
        // after it is clean.
        let files = vec![store_file(
            "fn reply(&self, w: &mut W) {\n\
                 let data = {\n\
                     let g = self.map.lock();\n\
                     g.get(0)\n\
                 };\n\
                 w.write_all(&data);\n\
             }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(check_lock_discipline_with(&files, &graph, &[]), Vec::new());
    }

    #[test]
    fn r10_temporary_guard_spans_its_trailing_block() {
        // `for … in m.lock().iter() { … }` holds the guard for the whole
        // loop body, so a lock taken inside the body is nested.
        let files = vec![store_file(
            "fn sweep(&self) {\n\
                 for e in self.map.lock().iter() {\n\
                     self.stats.lock().bump(e);\n\
                 }\n\
             }\n",
        )];
        let graph = CallGraph::build(&files);
        let v = check_lock_discipline_with(&files, &graph, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn r10_allowlist_excuses_and_goes_stale() {
        let allow: &[(&str, &str, &str)] =
            &[("crates/rnb-store/src/shard.rs", "swap", "fixture reason")];
        let dirty = vec![store_file(
            "fn swap(&self) { let a = self.l.lock(); let b = self.r.lock(); drop((a, b)); }\n",
        )];
        let graph = CallGraph::build(&dirty);
        assert_eq!(
            check_lock_discipline_with(&dirty, &graph, allow),
            Vec::new()
        );
        let clean = vec![store_file(
            "fn swap(&self) { let a = self.l.lock(); drop(a); }\n",
        )];
        let graph = CallGraph::build(&clean);
        let v = check_lock_discipline_with(&clean, &graph, allow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn r10_ignores_files_outside_the_store() {
        let files = vec![SourceFile::new(
            "crates/rnb-sim/src/lru.rs",
            "fn f(&self) { let a = m.lock(); let b = n.lock(); drop((a, b)); }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(check_lock_discipline_with(&files, &graph, &[]), Vec::new());
    }

    // -------- R0 --------

    #[test]
    fn r0_flags_duplicate_registry_keys_only() {
        let clean = self_check_with(&[("LIST", vec!["a".into(), "b".into()])]);
        assert_eq!(clean, Vec::new());
        let v = self_check_with(&[("LIST", vec!["a".into(), "b".into(), "a".into()])]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R0/lint-self-check");
        assert!(v[0].message.contains("duplicate key `a` in LIST"));
    }

    #[test]
    fn r0_real_registries_are_well_formed() {
        assert_eq!(self_check(), Vec::new());
    }
}
