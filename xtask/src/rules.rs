//! The repo-specific lint rules.
//!
//! | Rule | Scope | Invariant |
//! |------|-------|-----------|
//! | R1 `panic-free-serving-path` | `rnb-store` server/shard/store/protocol, `rnb-client` client | no `unwrap`/`expect`/`panic!`-family in non-test code: errors must propagate as `Result` |
//! | R2 `deterministic-simulation` | whole workspace | no unseeded randomness anywhere; no wall-clock reads outside the benchmark harness and `rnb-store`'s `clock.rs` (everything else takes an injected `Clock`) |
//! | R3 `lossless-wire-casts` | `rnb-store/src/protocol.rs` | no `as` integer casts in wire-format code: use `try_from` |
//! | R4 `invariant-inventory` | whole workspace | every non-test `debug_assert*` carries a message registered in INVARIANTS.md; every `::MAX` sentinel is registered; no stale entries |
//! | R5 `no-thread-sleep` | whole workspace | no `thread::sleep` in non-test code outside the justified allowlist: sleeping hides latency bugs and stalls serving threads |
//! | R6 `doc-example-coverage` | `rnb-core` | every non-test `pub fn` in the public-API crate carries a ```-fenced doc example (doctested usage), or an allowlisted reason |
//!
//! All rules match against [`SourceFile::scrubbed`] text, so comments and
//! string literals can never trip them. (R6 additionally reads
//! [`SourceFile::raw`] for the doc-comment blocks themselves, which the
//! scrubber blanks.)

use crate::inventory::{Inventory, Kind};
use crate::scrub::SourceFile;
use std::collections::BTreeSet;
use std::fmt;

/// One finding. The lint fails when any exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (`R1`..`R4` plus a slug).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, 0 for whole-file findings.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Files on the request-serving path, held to the panic-free standard.
pub const SERVING_PATH: &[&str] = &[
    "crates/rnb-store/src/server.rs",
    "crates/rnb-store/src/shard.rs",
    "crates/rnb-store/src/store.rs",
    "crates/rnb-store/src/protocol.rs",
    "crates/rnb-client/src/client.rs",
];

/// Wire-format files where every integer narrowing must use `try_from`.
pub const WIRE_FORMAT_PATH: &[&str] = &["crates/rnb-store/src/protocol.rs"];

/// Files allowed to read wall-clock time, with the reason on record.
/// A stale entry (no remaining wall-clock use) is itself a violation,
/// so this list cannot rot.
pub const TIME_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/rnb-bench/",
        "benchmark harness: measuring wall-clock latency/throughput is its job",
    ),
    (
        "crates/rnb-store/src/clock.rs",
        "the one sanctioned wall-clock read in rnb-store: RealClock anchors \
         an Instant; shard/store/server/loadgen all take an injected Clock",
    ),
];

/// Files allowed to call `thread::sleep` in non-test code, with the
/// reason on record. Same hygiene as [`TIME_ALLOWLIST`]: a stale entry is
/// itself a violation. Everything else must block on real events
/// (I/O readiness, channels, `thread::park`) instead of sleeping —
/// sleeps in serving or simulation code hide latency bugs and turn into
/// arbitrary stalls under load.
pub const SLEEP_ALLOWLIST: &[(&str, &str)] = &[(
    "crates/rnb-bench/src/bin/ext_udp.rs",
    "UDP is fire-and-forget: the external-traffic probe has no completion \
     event to block on, so it paces batches with a fixed settle delay",
)];

const SLEEP_PATTERN: &str = "thread::sleep";

/// R6 scope: the public-API crate whose `pub fn`s must show a doc example.
/// `rnb-core` is what downstream users program against; an example per
/// function keeps the API documentation executable (doctests) instead of
/// aspirational.
pub const DOC_EXAMPLE_PATH: &str = "crates/rnb-core/src/";

/// `(file, fn, reason)` triples excused from R6: trivial accessors whose
/// one-line bodies return a stored field and whose behaviour every
/// constructor example already demonstrates. Same hygiene as
/// [`TIME_ALLOWLIST`]: an entry whose function disappeared or has since
/// gained an example is reported stale, so the list cannot rot.
pub const DOC_EXAMPLE_ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "crates/rnb-core/src/baseline.rs",
        "copies",
        "trivial accessor (group count); shown by FullSystemReplication::new's example",
    ),
    (
        "crates/rnb-core/src/baseline.rs",
        "servers",
        "trivial accessor (total machines); shown by FullSystemReplication::new's example",
    ),
    (
        "crates/rnb-core/src/bundler.rs",
        "placement",
        "trivial accessor returning the owned placement; every planning example goes through it implicitly",
    ),
    (
        "crates/rnb-core/src/write.rs",
        "policy",
        "trivial accessor returning the stored WritePolicy",
    ),
    (
        "crates/rnb-core/src/write.rs",
        "placement",
        "trivial accessor returning the owned placement, mirror of Bundler::placement",
    ),
];

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const UNSEEDED_RNG_PATTERNS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "rand::rng()",
    "from_os_rng",
    "OsRng",
];

const WALLCLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime"];

/// Sentinel tokens that must be registered in the invariant inventory.
pub const SENTINEL_TOKENS: &[&str] = &[
    "usize::MAX",
    "u64::MAX",
    "u32::MAX",
    "u16::MAX",
    "u8::MAX",
    "i64::MAX",
    "i32::MAX",
];

/// Every byte offset at which `pattern` occurs in non-test scrubbed code.
fn non_test_occurrences<'a>(
    file: &'a SourceFile,
    pattern: &'a str,
) -> impl Iterator<Item = usize> + 'a {
    let mut search = 0;
    std::iter::from_fn(move || {
        while let Some(found) = file.scrubbed[search..].find(pattern) {
            let offset = search + found;
            search = offset + pattern.len();
            if !file.in_test_code(offset) {
                return Some(offset);
            }
        }
        None
    })
}

/// R1: the serving path must propagate errors, not panic.
pub fn check_panic_free(file: &SourceFile) -> Vec<Violation> {
    if !SERVING_PATH.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pattern in PANIC_PATTERNS {
        for offset in non_test_occurrences(file, pattern) {
            out.push(Violation {
                rule: "R1/panic-free-serving-path",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "`{pattern}` in serving-path code; propagate a Result instead \
                     (`{}`)",
                    file.excerpt(offset)
                ),
            });
        }
    }
    out
}

/// R2: simulations must be deterministic — no unseeded randomness at all,
/// and wall-clock reads only in allowlisted measurement/TTL files.
pub fn check_determinism(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for pattern in UNSEEDED_RNG_PATTERNS {
        for offset in non_test_occurrences(file, pattern) {
            out.push(Violation {
                rule: "R2/deterministic-simulation",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "`{pattern}` is unseeded randomness; take a seed and use \
                     `StdRng::seed_from_u64` (`{}`)",
                    file.excerpt(offset)
                ),
            });
        }
    }
    let allowed = TIME_ALLOWLIST
        .iter()
        .any(|(prefix, _)| file.rel_path.starts_with(prefix));
    if !allowed {
        for pattern in WALLCLOCK_PATTERNS {
            for offset in non_test_occurrences(file, pattern) {
                out.push(Violation {
                    rule: "R2/deterministic-simulation",
                    file: file.rel_path.clone(),
                    line: file.line_of(offset),
                    message: format!(
                        "`{pattern}` outside the time allowlist; thread a logical \
                         clock through instead, or add an allowlist entry with a \
                         written reason in xtask/src/rules.rs (`{}`)",
                        file.excerpt(offset)
                    ),
                });
            }
        }
    }
    out
}

/// Which wall-clock allowlist entries are actually exercised by `files`.
pub fn used_time_allowlist_entries(files: &[SourceFile]) -> BTreeSet<&'static str> {
    let mut used = BTreeSet::new();
    for (prefix, _) in TIME_ALLOWLIST {
        for file in files {
            if file.rel_path.starts_with(prefix)
                && WALLCLOCK_PATTERNS
                    .iter()
                    .any(|p| non_test_occurrences(file, p).next().is_some())
            {
                used.insert(*prefix);
            }
        }
    }
    used
}

/// R2 (hygiene): allowlist entries must still be needed.
pub fn check_stale_allowlist(files: &[SourceFile]) -> Vec<Violation> {
    let used = used_time_allowlist_entries(files);
    TIME_ALLOWLIST
        .iter()
        .filter(|(prefix, _)| !used.contains(prefix))
        .map(|(prefix, _)| Violation {
            rule: "R2/deterministic-simulation",
            file: prefix.to_string(),
            line: 0,
            message: format!(
                "stale time allowlist entry `{prefix}`: no wall-clock use remains; \
                 remove it from xtask/src/rules.rs"
            ),
        })
        .collect()
}

/// R5: no `thread::sleep` in non-test code outside the allowlist.
pub fn check_no_sleep(file: &SourceFile) -> Vec<Violation> {
    if SLEEP_ALLOWLIST
        .iter()
        .any(|(prefix, _)| file.rel_path.starts_with(prefix))
    {
        return Vec::new();
    }
    non_test_occurrences(file, SLEEP_PATTERN)
        .map(|offset| Violation {
            rule: "R5/no-thread-sleep",
            file: file.rel_path.clone(),
            line: file.line_of(offset),
            message: format!(
                "`{SLEEP_PATTERN}` in non-test code; block on a real event \
                 (I/O readiness, a channel, `thread::park`) instead, or add \
                 an allowlist entry with a written reason in \
                 xtask/src/rules.rs (`{}`)",
                file.excerpt(offset)
            ),
        })
        .collect()
}

/// R5 (hygiene): sleep allowlist entries must still be needed.
pub fn check_stale_sleep_allowlist(files: &[SourceFile]) -> Vec<Violation> {
    SLEEP_ALLOWLIST
        .iter()
        .filter(|(prefix, _)| {
            !files.iter().any(|file| {
                file.rel_path.starts_with(prefix)
                    && non_test_occurrences(file, SLEEP_PATTERN).next().is_some()
            })
        })
        .map(|(prefix, _)| Violation {
            rule: "R5/no-thread-sleep",
            file: prefix.to_string(),
            line: 0,
            message: format!(
                "stale sleep allowlist entry `{prefix}`: no `thread::sleep` \
                 remains; remove it from xtask/src/rules.rs"
            ),
        })
        .collect()
}

/// A non-test `pub fn` declaration and whether its doc block shows an
/// example (a ``` fence anywhere in the contiguous `///` run above it,
/// attributes skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubFnSite {
    /// 1-based declaration line.
    pub line: usize,
    /// The function's identifier.
    pub name: String,
    /// Whether the attached doc comment contains a fenced code block.
    pub has_example: bool,
}

/// Every non-test `pub fn` in `file` (plain/`const`/`async`/`unsafe`;
/// `pub(crate)` and narrower visibilities are not public API and are
/// skipped). Declaration detection runs on the scrubbed text so strings
/// and comments cannot fake one; the doc block is read from the raw text
/// because the scrubber blanks comments.
pub fn public_fns(file: &SourceFile) -> Vec<PubFnSite> {
    const PUB_FN_PREFIXES: &[&str] = &[
        "pub fn ",
        "pub const fn ",
        "pub async fn ",
        "pub unsafe fn ",
    ];
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let mut out = Vec::new();
    let mut offset = 0usize;
    for (idx, sline) in file.scrubbed.lines().enumerate() {
        let line_start = offset;
        offset += sline.len() + 1;
        let trimmed = sline.trim_start();
        let Some(rest) = PUB_FN_PREFIXES.iter().find_map(|p| trimmed.strip_prefix(p)) else {
            continue;
        };
        if file.in_test_code(line_start + (sline.len() - trimmed.len())) {
            continue;
        }
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Walk upward over the attribute lines to the contiguous doc block.
        let mut has_example = false;
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let above = raw_lines.get(i).map_or("", |l| l.trim());
            if above.starts_with("#[") {
                continue;
            }
            if above.starts_with("///") {
                if above.contains("```") {
                    has_example = true;
                }
                continue;
            }
            break;
        }
        out.push(PubFnSite {
            line: idx + 1,
            name,
            has_example,
        });
    }
    out
}

/// R6: public API functions must show a doc example.
pub fn check_doc_examples(file: &SourceFile) -> Vec<Violation> {
    check_doc_examples_with(file, DOC_EXAMPLE_ALLOWLIST)
}

/// [`check_doc_examples`] against an explicit allowlist (fixture tests).
pub fn check_doc_examples_with(
    file: &SourceFile,
    allowlist: &[(&str, &str, &str)],
) -> Vec<Violation> {
    if !file.rel_path.starts_with(DOC_EXAMPLE_PATH) {
        return Vec::new();
    }
    public_fns(file)
        .into_iter()
        .filter(|f| !f.has_example)
        .filter(|f| {
            !allowlist
                .iter()
                .any(|(path, name, _)| *path == file.rel_path && *name == f.name)
        })
        .map(|f| Violation {
            rule: "R6/doc-example-coverage",
            file: file.rel_path.clone(),
            line: f.line,
            message: format!(
                "`pub fn {}` has no doc example; add a ```-fenced example to \
                 its doc comment, or an allowlist entry with a written reason \
                 in xtask/src/rules.rs",
                f.name
            ),
        })
        .collect()
}

/// R6 (hygiene): allowlist entries must still name an example-less fn.
pub fn check_stale_doc_allowlist(files: &[SourceFile]) -> Vec<Violation> {
    check_stale_doc_allowlist_with(files, DOC_EXAMPLE_ALLOWLIST)
}

/// [`check_stale_doc_allowlist`] against an explicit allowlist.
pub fn check_stale_doc_allowlist_with(
    files: &[SourceFile],
    allowlist: &[(&str, &str, &str)],
) -> Vec<Violation> {
    allowlist
        .iter()
        .filter(|(path, name, _)| {
            !files.iter().any(|file| {
                file.rel_path == *path
                    && public_fns(file)
                        .iter()
                        .any(|f| f.name == *name && !f.has_example)
            })
        })
        .map(|(path, name, _)| Violation {
            rule: "R6/doc-example-coverage",
            file: (*path).to_string(),
            line: 0,
            message: format!(
                "stale doc-example allowlist entry `{path}::{name}`: the \
                 function is gone or now has an example; remove the entry \
                 from xtask/src/rules.rs"
            ),
        })
        .collect()
}

const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// R3: wire-format code converts integers with `try_from`, never `as`.
pub fn check_wire_casts(file: &SourceFile) -> Vec<Violation> {
    if !WIRE_FORMAT_PATH.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for offset in non_test_occurrences(file, " as ") {
        let after = &file.scrubbed[offset + 4..];
        let token: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if INT_CAST_TARGETS.contains(&token.as_str()) {
            out.push(Violation {
                rule: "R3/lossless-wire-casts",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "integer `as {token}` cast in wire-format code; use \
                     `{token}::try_from` and surface the error (`{}`)",
                    file.excerpt(offset)
                ),
            });
        }
    }
    out
}

/// A `debug_assert*` site or sentinel token occurrence found in source.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InvariantSite {
    /// Which kind of invariant marker this is.
    pub kind: Kind,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The registered identity: assertion message, or sentinel token.
    pub pattern: String,
}

/// Extract every non-test invariant site from `file`.
///
/// `debug_assert!`/`debug_assert_eq!`/`debug_assert_ne!` sites yield their
/// message string (the first argument that is a string literal at the
/// macro's top nesting level); a missing message is reported as a
/// violation because an unlabeled invariant cannot be registered.
pub fn collect_invariant_sites(file: &SourceFile) -> (Vec<InvariantSite>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for offset in non_test_occurrences(file, "debug_assert") {
        // Skip the `debug_assert_eq`-suffix matches of plain "debug_assert".
        let Some(open_rel) = file.scrubbed[offset..].find('(') else {
            continue;
        };
        let head = &file.scrubbed[offset..offset + open_rel];
        if !matches!(
            head.trim_end_matches('!'),
            "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
        ) {
            continue;
        }
        let open = offset + open_rel;
        let Some(close) = matching_paren(&file.scrubbed, open) else {
            continue;
        };
        match extract_message(file, open, close) {
            Some(message) => sites.push(InvariantSite {
                kind: Kind::DebugAssert,
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                pattern: message,
            }),
            None => violations.push(Violation {
                rule: "R4/invariant-inventory",
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "`{head}` without a message: label the invariant so it can \
                     be registered in INVARIANTS.md (`{}`)",
                    file.excerpt(offset)
                ),
            }),
        }
    }
    for token in SENTINEL_TOKENS {
        for offset in non_test_occurrences(file, token) {
            // `usize::MAX` also matches inside `u32::MAX`? No — but make
            // sure we are at a token boundary on the left (e.g. not a
            // hypothetical `busize::MAX`).
            if offset > 0 {
                let prev = file.scrubbed.as_bytes()[offset - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            sites.push(InvariantSite {
                kind: Kind::Sentinel,
                file: file.rel_path.clone(),
                line: file.line_of(offset),
                pattern: (*token).to_string(),
            });
        }
    }
    (sites, violations)
}

/// R4: cross-check collected sites against the inventory, both ways.
pub fn check_inventory(sites: &[InvariantSite], inventory: &Inventory) -> Vec<Violation> {
    let mut out = Vec::new();
    for site in sites {
        if !inventory.covers(site.kind, &site.file, &site.pattern) {
            out.push(Violation {
                rule: "R4/invariant-inventory",
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "unregistered {} `{}`: add a row to INVARIANTS.md explaining \
                     why this invariant holds",
                    site.kind, site.pattern
                ),
            });
        }
    }
    for entry in inventory.entries() {
        let live = sites
            .iter()
            .any(|s| s.kind == entry.kind && s.file == entry.file && s.pattern == entry.pattern);
        if !live {
            out.push(Violation {
                rule: "R4/invariant-inventory",
                file: entry.file.clone(),
                line: 0,
                message: format!(
                    "stale inventory row ({} `{}`): no matching site remains; \
                     remove or update the INVARIANTS.md entry",
                    entry.kind, entry.pattern
                ),
            });
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open` (scrubbed text, so string
/// contents cannot unbalance it).
fn matching_paren(scrubbed: &str, open: usize) -> Option<usize> {
    let b = scrubbed.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The message argument of a `debug_assert*` call spanning `open..=close`:
/// the first top-level comma-separated argument that begins with a string
/// literal. Returns its raw contents.
fn extract_message(file: &SourceFile, open: usize, close: usize) -> Option<String> {
    let b = file.scrubbed.as_bytes();
    let mut depth = 0usize;
    let mut arg_start = open + 1;
    let mut i = open;
    while i <= close {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 1 => {
                if let Some(msg) = string_literal_at(file, arg_start, i) {
                    return Some(msg);
                }
                arg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    string_literal_at(file, arg_start, close)
}

/// If the argument in `range` starts with a string literal, return its
/// raw (unscrubbed) contents.
fn string_literal_at(file: &SourceFile, start: usize, end: usize) -> Option<String> {
    let slice = &file.scrubbed[start..end];
    let rel = slice.find(|c: char| !c.is_whitespace())?;
    if !slice[rel..].starts_with('"') {
        return None;
    }
    let lit_start = start + rel + 1;
    let lit_end = lit_start + file.scrubbed[lit_start..end].find('"')?;
    Some(file.raw[lit_start..lit_end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::Inventory;

    fn serving(src: &str) -> SourceFile {
        SourceFile::new("crates/rnb-store/src/server.rs", src)
    }

    // -------- R1 --------

    #[test]
    fn r1_detects_each_panic_pattern() {
        for line in [
            "fn f() { x.unwrap(); }",
            "fn f() { x.expect(\"boom\"); }",
            "fn f() { panic!(\"boom\"); }",
            "fn f() { unreachable!(); }",
            "fn f() { todo!(); }",
            "fn f() { unimplemented!(); }",
        ] {
            let v = check_panic_free(&serving(line));
            assert_eq!(v.len(), 1, "expected one finding for {line:?}: {v:?}");
            assert_eq!(v[0].rule, "R1/panic-free-serving-path");
            assert_eq!(v[0].line, 1);
        }
    }

    #[test]
    fn r1_ignores_tests_comments_strings_and_other_files() {
        let masked = serving(
            "fn ok() -> Result<(), E> { Ok(()) }\n\
             // a comment saying .unwrap()\n\
             /// docs: call .unwrap() freely\n\
             fn s() { let m = \"panic!(\"; }\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { x.unwrap(); panic!(\"fine\"); }\n}\n",
        );
        assert_eq!(check_panic_free(&masked), Vec::new());
        let elsewhere = SourceFile::new("crates/rnb-sim/src/lru.rs", "fn f() { x.unwrap(); }");
        assert_eq!(check_panic_free(&elsewhere), Vec::new());
    }

    // -------- R2 --------

    #[test]
    fn r2_detects_unseeded_randomness_everywhere() {
        for line in [
            "fn f() { let mut r = rand::rng(); }",
            "fn f() { let mut r = thread_rng(); }",
            "fn f() { let r = StdRng::from_entropy(); }",
            "fn f() { let r = StdRng::from_os_rng(); }",
        ] {
            let f = SourceFile::new("crates/rnb-sim/src/cluster.rs", line);
            let v = check_determinism(&f);
            assert_eq!(v.len(), 1, "expected one finding for {line:?}");
        }
        // Even inside allowlisted files: the time allowlist never excuses
        // unseeded randomness.
        let f = SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn f() { let mut r = thread_rng(); }",
        );
        assert_eq!(check_determinism(&f).len(), 1);
    }

    #[test]
    fn r2_flags_wallclock_outside_allowlist_only() {
        let outside = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }",
        );
        assert_eq!(check_determinism(&outside).len(), 2);
        let inside = SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(check_determinism(&inside), Vec::new());
        let bench = SourceFile::new(
            "crates/rnb-bench/src/bin/ext_scale.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(check_determinism(&bench), Vec::new());
    }

    #[test]
    fn r2_flags_reintroduced_wallclock_in_clock_injected_files() {
        // shard.rs and loadgen.rs earned their way off the allowlist when
        // the injected Clock landed; a reintroduced direct read must fail
        // the lint from now on.
        for path in [
            "crates/rnb-store/src/shard.rs",
            "crates/rnb-store/src/loadgen.rs",
            "crates/rnb-store/src/server.rs",
            "crates/rnb-store/src/store.rs",
        ] {
            let f = SourceFile::new(path, "fn f() { let t = Instant::now(); }");
            let v = check_determinism(&f);
            assert_eq!(v.len(), 1, "{path} must not read the wall clock");
            assert_eq!(v[0].rule, "R2/deterministic-simulation");
            assert!(v[0].message.contains("outside the time allowlist"));
        }
    }

    #[test]
    fn r2_seeded_randomness_is_fine() {
        let f = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f(seed: u64) { let mut r = StdRng::seed_from_u64(seed); }",
        );
        assert_eq!(check_determinism(&f), Vec::new());
    }

    #[test]
    fn r2_stale_allowlist_entries_are_flagged() {
        // None of these files read the clock, so every entry is stale.
        let files = vec![SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn quiet() {}",
        )];
        let v = check_stale_allowlist(&files);
        assert_eq!(v.len(), TIME_ALLOWLIST.len());
        // One real use marks exactly that entry live.
        let files = vec![SourceFile::new(
            "crates/rnb-store/src/clock.rs",
            "fn f() { let t = Instant::now(); }",
        )];
        let v = check_stale_allowlist(&files);
        assert_eq!(v.len(), TIME_ALLOWLIST.len() - 1);
        assert!(v.iter().all(|v| !v.file.contains("clock")));
    }

    // -------- R5 --------

    #[test]
    fn r5_detects_sleep_in_non_test_code() {
        let f = SourceFile::new(
            "crates/rnb-store/src/bin/rnb-stored.rs",
            "fn f() { std::thread::sleep(std::time::Duration::from_secs(1)); }",
        );
        let v = check_no_sleep(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R5/no-thread-sleep");
        // Bare `thread::sleep` (pre-imported) is the same pattern.
        let bare = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f() { thread::sleep(d); }",
        );
        assert_eq!(check_no_sleep(&bare).len(), 1);
    }

    #[test]
    fn r5_ignores_tests_comments_and_allowlisted_files() {
        let test_code = SourceFile::new(
            "crates/rnb-store/src/shard.rs",
            "#[cfg(test)]\nmod tests { fn t() { std::thread::sleep(d); } }",
        );
        assert_eq!(check_no_sleep(&test_code), Vec::new());
        let comment = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "// never call thread::sleep here\nfn f() {}",
        );
        assert_eq!(check_no_sleep(&comment), Vec::new());
        let allowlisted = SourceFile::new(
            "crates/rnb-bench/src/bin/ext_udp.rs",
            "fn f() { std::thread::sleep(d); }",
        );
        assert_eq!(check_no_sleep(&allowlisted), Vec::new());
    }

    #[test]
    fn r5_stale_sleep_allowlist_entries_are_flagged() {
        // No file sleeps → every allowlist entry is stale.
        let files = vec![SourceFile::new(
            "crates/rnb-bench/src/bin/ext_udp.rs",
            "fn quiet() {}",
        )];
        let v = check_stale_sleep_allowlist(&files);
        assert_eq!(v.len(), SLEEP_ALLOWLIST.len());
        assert!(v[0].message.contains("stale"));
        // A real sleep marks the entry live.
        let files = vec![SourceFile::new(
            "crates/rnb-bench/src/bin/ext_udp.rs",
            "fn f() { std::thread::sleep(d); }",
        )];
        assert_eq!(check_stale_sleep_allowlist(&files), Vec::new());
    }

    // -------- R3 --------

    #[test]
    fn r3_detects_lossy_int_casts_in_wire_code() {
        let f = SourceFile::new(
            "crates/rnb-store/src/protocol.rs",
            "fn f(n: u64) -> u16 { n as u16 }",
        );
        let v = check_wire_casts(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R3/lossless-wire-casts");
    }

    #[test]
    fn r3_allows_float_casts_nontarget_files_and_tests() {
        let float = SourceFile::new(
            "crates/rnb-store/src/protocol.rs",
            "fn f(n: u64) -> f64 { n as f64 }",
        );
        assert_eq!(check_wire_casts(&float), Vec::new());
        let elsewhere = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f(n: u64) -> u16 { n as u16 }",
        );
        assert_eq!(check_wire_casts(&elsewhere), Vec::new());
        let test_code = SourceFile::new(
            "crates/rnb-store/src/protocol.rs",
            "#[cfg(test)]\nmod tests { fn f(n: u64) -> u16 { n as u16 } }",
        );
        assert_eq!(check_wire_casts(&test_code), Vec::new());
    }

    // -------- R4 --------

    fn inventory(rows: &str) -> Inventory {
        Inventory::parse(rows).expect("fixture inventory parses")
    }

    #[test]
    fn r4_requires_registration_of_debug_assert_messages() {
        let f = SourceFile::new(
            "crates/rnb-cover/src/bitset.rs",
            "fn f() { debug_assert!(i < n, \"bit out of universe\"); }",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(missing, Vec::new());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].pattern, "bit out of universe");

        let empty = inventory("| file | kind | pattern | rationale |\n|---|---|---|---|\n");
        assert_eq!(check_inventory(&sites, &empty).len(), 1);

        let good = inventory(
            "| crates/rnb-cover/src/bitset.rs | debug_assert | bit out of universe | checked |",
        );
        assert_eq!(check_inventory(&sites, &good), Vec::new());
    }

    #[test]
    fn r4_flags_messageless_debug_asserts() {
        let f = SourceFile::new(
            "crates/rnb-cover/src/bitset.rs",
            "fn f() { debug_assert_eq!(a.len, b.len); }",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(sites, Vec::new());
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("without a message"));
    }

    #[test]
    fn r4_extracts_messages_from_eq_and_multiline_forms() {
        let f = SourceFile::new(
            "crates/rnb-sim/src/cluster.rs",
            "fn f() {\n    debug_assert_eq!(\n        a(x, y),\n        b,\n        \
             \"accounting reconciles\"\n    );\n}",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(missing, Vec::new());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].pattern, "accounting reconciles");
    }

    #[test]
    fn r4_registers_sentinels_and_flags_stale_rows() {
        let f = SourceFile::new(
            "crates/rnb-sim/src/lru.rs",
            "const NIL: usize = usize::MAX;\n",
        );
        let (sites, _) = collect_invariant_sites(&f);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, Kind::Sentinel);

        let unregistered = inventory("| a | sentinel | u32::MAX | n/a |");
        let v = check_inventory(&sites, &unregistered);
        // One unregistered site + one stale row.
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.message.contains("unregistered")));
        assert!(v.iter().any(|v| v.message.contains("stale")));

        let good =
            inventory("| crates/rnb-sim/src/lru.rs | sentinel | usize::MAX | freelist NIL |");
        assert_eq!(check_inventory(&sites, &good), Vec::new());
    }

    // -------- R6 --------

    fn core(src: &str) -> SourceFile {
        SourceFile::new("crates/rnb-core/src/plan.rs", src)
    }

    #[test]
    fn r6_flags_example_less_pub_fns() {
        let f = core(
            "/// Does a thing.\n\
             pub fn undocumented() {}\n\
             pub const fn bare() {}\n",
        );
        let v = check_doc_examples_with(&f, &[]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "R6/doc-example-coverage"));
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("undocumented"));
        assert!(v[1].message.contains("bare"));
    }

    #[test]
    fn r6_accepts_fenced_examples_through_attributes() {
        let f = core(
            "/// Sums.\n\
             ///\n\
             /// ```\n\
             /// assert_eq!(1 + 1, 2);\n\
             /// ```\n\
             #[must_use]\n\
             pub fn documented(a: u32) -> u32 { a }\n",
        );
        assert_eq!(check_doc_examples_with(&f, &[]), Vec::new());
    }

    #[test]
    fn r6_ignores_non_core_files_private_fns_and_tests() {
        let elsewhere = SourceFile::new("crates/rnb-sim/src/lru.rs", "pub fn f() {}\n");
        assert_eq!(check_doc_examples_with(&elsewhere, &[]), Vec::new());
        let non_public = core(
            "fn private() {}\n\
             pub(crate) fn internal() {}\n\
             // a comment mentioning pub fn fake()\n\
             const S: &str = \"pub fn in_a_string()\";\n\
             #[cfg(test)]\n\
             mod tests { pub fn helper() {} }\n",
        );
        assert_eq!(check_doc_examples_with(&non_public, &[]), Vec::new());
    }

    #[test]
    fn r6_allowlist_excuses_and_goes_stale() {
        let f = core("/// Plain doc.\npub fn excused() {}\n");
        let allow: &[(&str, &str, &str)] = &[("crates/rnb-core/src/plan.rs", "excused", "fixture")];
        assert_eq!(check_doc_examples_with(&f, allow), Vec::new());
        // Live while the fn lacks an example…
        assert_eq!(check_stale_doc_allowlist_with(&[f], allow), Vec::new());
        // …stale once it gains one (or disappears).
        let fixed = core("/// ```\n/// // now shown\n/// ```\npub fn excused() {}\n");
        let v = check_stale_doc_allowlist_with(&[fixed], allow);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn r4_ignores_test_code_sites() {
        let f = SourceFile::new(
            "crates/rnb-hash/src/jump.rs",
            "#[cfg(test)]\nmod tests { fn f() { let k = u64::MAX; debug_assert!(true); } }",
        );
        let (sites, missing) = collect_invariant_sites(&f);
        assert_eq!(sites, Vec::new());
        assert_eq!(missing, Vec::new());
    }
}
