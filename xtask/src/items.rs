//! Item extraction: which functions exist where.
//!
//! A linear scan over the token stream ([`crate::lexer`]) with a scope
//! stack recovers the parts of the item tree the call-graph rules need:
//! every `fn` with its byte spans, enclosing module path, and — for
//! methods — the `Self` type of the enclosing `impl`/`trait` block.
//!
//! The scan is deliberately not a parser: it understands exactly the
//! constructs that open named scopes (`mod`, `impl`, `trait`, `fn`) and
//! treats every other `{` as an anonymous block. Signatures are skipped
//! wholesale, which is what keeps `-> impl Fn(usize) -> bool` and friends
//! from confusing the scope stack.

use crate::lexer::{tokenize, TokKind, Token};
use crate::scrub::SourceFile;

/// One `fn` item found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The function's identifier.
    pub name: String,
    /// `Self` type when declared directly inside an `impl`/`trait` block.
    pub self_ty: Option<String>,
    /// Names of the enclosing `mod` blocks, outermost first.
    pub module_path: Vec<String>,
    /// Workspace crate the file belongs to (underscored), when it lies
    /// under `crates/<name>/src/`.
    pub crate_name: Option<String>,
    /// Byte offset of the `fn` keyword.
    pub decl_offset: usize,
    /// Byte span of the signature (from `fn` to just before the body
    /// brace or the terminating `;`).
    pub sig: (usize, usize),
    /// Byte span of the body including braces; `None` for bodiless
    /// declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// True when the declaration lies in `#[cfg(test)]`-gated code.
    pub is_test: bool,
}

impl FnItem {
    /// The signature text (scrubbed).
    pub fn sig_text<'a>(&self, file: &'a SourceFile) -> &'a str {
        &file.scrubbed[self.sig.0..self.sig.1]
    }
}

/// Tokens plus the `fn` items of one file.
pub struct FileItems {
    /// The file's full token stream.
    pub tokens: Vec<Token>,
    /// Every `fn` found, in source order.
    pub fns: Vec<FnItem>,
}

/// The workspace crate owning `rel_path`, when it lies under
/// `crates/<name>/src/` (hyphens mapped to underscores, as in `use`
/// paths). Integration tests, benches, examples, and `xtask` itself are
/// outside any crate's `src/` and return `None` — the call graph covers
/// library code only.
pub fn crate_of(rel_path: &str) -> Option<String> {
    let rest = rel_path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then(|| name.replace('-', "_"))
}

/// The implicit module path a file's location contributes (before any
/// inline `mod` blocks): `src/shard.rs` → `["shard"]`, `src/foo/bar.rs`
/// → `["foo", "bar"]`, while `lib.rs`/`main.rs`/`mod.rs` and `src/bin/*`
/// targets are crate roots contributing nothing.
pub fn file_module_path(rel_path: &str) -> Vec<String> {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return Vec::new();
    };
    let Some((_, tail)) = rest.split_once('/') else {
        return Vec::new();
    };
    let Some(tail) = tail.strip_prefix("src/") else {
        return Vec::new();
    };
    let mut parts: Vec<&str> = tail.split('/').collect();
    let file = parts.pop().unwrap_or("");
    if parts.first() == Some(&"bin") {
        return Vec::new();
    }
    let mut out: Vec<String> = parts.iter().map(|p| (*p).to_string()).collect();
    match file.strip_suffix(".rs") {
        Some("lib") | Some("main") | Some("mod") | None => {}
        Some(stem) => out.push(stem.replace('-', "_")),
    }
    out
}

enum Scope {
    Module(String),
    Impl(Option<String>),
    Trait(String),
    Fn,
    Other,
}

/// Scan one file into its token stream and `fn` items.
pub fn scan_file(file: &SourceFile) -> FileItems {
    let toks = tokenize(&file.scrubbed);
    let s = &file.scrubbed;
    let crate_name = crate_of(&file.rel_path);
    let base_modules = file_module_path(&file.rel_path);
    let mut fns = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        match t.kind {
            TokKind::Punct(b'{') => {
                stack.push(Scope::Other);
                i += 1;
            }
            TokKind::Punct(b'}') => {
                stack.pop();
                i += 1;
            }
            TokKind::Ident if t.is_ident(s, "mod") => {
                // `mod name {` opens a module scope; `mod name;` is an
                // out-of-line module (its file is scanned separately).
                if let (Some(name_tok), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if name_tok.kind == TokKind::Ident && open.is_punct(b'{') {
                        stack.push(Scope::Module(name_tok.text(s).to_string()));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            TokKind::Ident if t.is_ident(s, "impl") => match parse_impl_header(&toks, s, i) {
                Some((self_ty, open_idx)) => {
                    stack.push(Scope::Impl(self_ty));
                    i = open_idx + 1;
                }
                None => i += 1,
            },
            TokKind::Ident if t.is_ident(s, "trait") => {
                // `trait Name …: bounds… where … {` — no braces can occur
                // before the body's, so the first `{` is it.
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text(s).to_string(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                match toks[i..]
                    .iter()
                    .position(|t| t.is_punct(b'{') || t.is_punct(b';'))
                {
                    Some(rel) if toks[i + rel].is_punct(b'{') => {
                        stack.push(Scope::Trait(name));
                        i += rel + 1;
                    }
                    Some(rel) => i += rel + 1,
                    None => i = toks.len(),
                }
            }
            TokKind::Ident if t.is_ident(s, "fn") => {
                // `fn` in type position (`fn(u8) -> u8`) has `(` next, not
                // a name; only named `fn`s are items.
                let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some((sig_end_idx, has_body)) = find_sig_end(&toks, i + 2) else {
                    i = toks.len();
                    continue;
                };
                let sig_end_tok = toks[sig_end_idx];
                let self_ty = match stack.last() {
                    Some(Scope::Impl(ty)) => ty.clone(),
                    Some(Scope::Trait(name)) => Some(name.clone()),
                    _ => None,
                };
                let module_path = base_modules
                    .iter()
                    .cloned()
                    .chain(stack.iter().filter_map(|sc| match sc {
                        Scope::Module(m) => Some(m.clone()),
                        _ => None,
                    }))
                    .collect();
                let body = if has_body {
                    matching_brace(&toks, sig_end_idx)
                        .map(|close| (sig_end_tok.start, toks[close].end))
                } else {
                    None
                };
                fns.push(FnItem {
                    file: file.rel_path.clone(),
                    name: name_tok.text(s).to_string(),
                    self_ty,
                    module_path,
                    crate_name: crate_name.clone(),
                    decl_offset: t.start,
                    sig: (t.start, sig_end_tok.start),
                    body,
                    is_test: file.in_test_code(t.start),
                });
                if has_body {
                    // Enter the body so nested items are still seen (with
                    // self_ty = None: a nested fn is not a method).
                    stack.push(Scope::Fn);
                }
                i = sig_end_idx + 1;
            }
            _ => i += 1,
        }
    }
    FileItems { tokens: toks, fns }
}

/// From the token after the `fn` name, find the index of the body `{` or
/// the terminating `;` at paren/bracket depth 0. Returns `(index,
/// has_body)`.
fn find_sig_end(toks: &[Token], mut i: usize) -> Option<(usize, bool)> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'(') => paren += 1,
            TokKind::Punct(b')') => paren -= 1,
            TokKind::Punct(b'[') => bracket += 1,
            TokKind::Punct(b']') => bracket -= 1,
            TokKind::Punct(b'{') if paren == 0 && bracket == 0 => return Some((i, true)),
            TokKind::Punct(b';') if paren == 0 && bracket == 0 => return Some((i, false)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the `}` token matching the `{` at token index `open`.
fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse an `impl` header starting at token index `i` (the `impl` ident):
/// returns the `Self` type name and the index of the body `{`.
///
/// Handles `impl<G> Type`, `impl Trait for Type`, `where` clauses, and
/// `->` arrows inside generic bounds. The `Self` type is approximated as
/// the last identifier at angle-depth 0 of the type expression — right
/// for paths, references, and generic types; tuples and slices collapse
/// to their last segment, which is good enough for suffix matching.
fn parse_impl_header(toks: &[Token], s: &str, i: usize) -> Option<(Option<String>, usize)> {
    let mut j = i + 1;
    // Skip the generic parameter list, if any.
    if toks.get(j)?.is_punct(b'<') {
        j = skip_angles(toks, j)?;
    }
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = toks[j];
        match t.kind {
            TokKind::Punct(b'<') if !is_arrow_tail(toks, s, j) => angle += 1,
            TokKind::Punct(b'>') if !is_arrow_tail(toks, s, j) => angle -= 1,
            TokKind::Punct(b'(') => paren += 1,
            TokKind::Punct(b')') => paren -= 1,
            TokKind::Punct(b'{') if angle <= 0 && paren == 0 => {
                return Some((last_ident, j));
            }
            TokKind::Ident if angle <= 0 && paren == 0 => {
                let word = t.text(s);
                if word == "where" {
                    // Bounds follow; the Self type is already collected.
                    let open = toks[j..].iter().position(|t| t.is_punct(b'{'))?;
                    return Some((last_ident, j + open));
                }
                // `impl Trait for Type`: restart collection after `for`
                // (but not the HRTB `for<'a>`).
                if word == "for" && !toks.get(j + 1).is_some_and(|n| n.is_punct(b'<')) {
                    last_ident = None;
                } else if !matches!(word, "dyn" | "mut" | "const" | "unsafe") {
                    last_ident = Some(word.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// True when the `<`/`>` token at `j` is the tail of a `->` / `=>` arrow
/// or part of a shift assignment — i.e. not an angle bracket.
fn is_arrow_tail(toks: &[Token], _s: &str, j: usize) -> bool {
    j > 0
        && matches!(
            toks[j - 1].kind,
            TokKind::Punct(b'-') | TokKind::Punct(b'=')
        )
        && toks[j - 1].end == toks[j].start
}

/// Skip a balanced `<…>` group starting at token index `open`; returns
/// the index just past the closing `>`.
fn skip_angles(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(b'<') if !is_arrow_tail(toks, "", j) => depth += 1,
            TokKind::Punct(b'>') if !is_arrow_tail(toks, "", j) => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<FnItem> {
        scan_file(&SourceFile::new("crates/rnb-store/src/x.rs", src)).fns
    }

    #[test]
    fn crate_of_maps_src_files_only() {
        assert_eq!(
            crate_of("crates/rnb-store/src/server.rs").as_deref(),
            Some("rnb_store")
        );
        assert_eq!(
            crate_of("crates/rnb-store/src/bin/rnb-stored.rs").as_deref(),
            Some("rnb_store")
        );
        assert_eq!(crate_of("crates/rnb-store/tests/integration.rs"), None);
        assert_eq!(crate_of("xtask/src/lib.rs"), None);
        assert_eq!(crate_of("src/lib.rs"), None);
        assert_eq!(crate_of("tests/lint_clean.rs"), None);
    }

    #[test]
    fn free_fns_and_methods() {
        let fns = scan(
            "fn free(x: u32) -> u32 { x }\n\
             struct S;\n\
             impl S {\n    fn method(&self) {}\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n",
        );
        assert_eq!(fns.len(), 3);
        assert_eq!(
            (fns[0].name.as_str(), fns[0].self_ty.as_deref()),
            ("free", None)
        );
        assert_eq!(
            (fns[1].name.as_str(), fns[1].self_ty.as_deref()),
            ("method", Some("S"))
        );
        assert_eq!(
            (fns[2].name.as_str(), fns[2].self_ty.as_deref()),
            ("fmt", Some("S"))
        );
        assert_eq!(fns[0].crate_name.as_deref(), Some("rnb_store"));
    }

    #[test]
    fn generic_impls_where_clauses_and_arrows() {
        let fns = scan(
            "impl<F: Fn(usize) -> bool> Wrapper<F> where F: Clone {\n\
             \u{20}   fn call(&self) -> bool { (self.f)(0) }\n\
             }\n\
             impl<T> From<T> for Box<T> {\n    fn from(t: T) -> Self { Box(t) }\n}\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(fns[1].self_ty.as_deref(), Some("Box"));
    }

    #[test]
    fn modules_traits_and_nested_fns() {
        let fns = scan(
            "mod inner {\n\
             \u{20}   pub trait Hasher {\n        fn hash(&self) -> u64;\n        fn twice(&self) -> u64 { self.hash() * 2 }\n    }\n\
             \u{20}   pub fn helper() { fn nested() {} nested(); }\n\
             }\n",
        );
        let by_name: Vec<(&str, Option<&str>, &[String])> = fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.self_ty.as_deref(),
                    f.module_path.as_slice(),
                )
            })
            .collect();
        assert_eq!(by_name[0].0, "hash");
        assert_eq!(by_name[0].1, Some("Hasher"));
        assert!(fns[0].body.is_none(), "bodiless trait method");
        assert_eq!(by_name[1].0, "twice");
        assert!(fns[1].body.is_some());
        let expect = ["x".to_string(), "inner".to_string()];
        assert_eq!(by_name[2], ("helper", None, &expect[..]));
        assert_eq!(by_name[3], ("nested", None, &expect[..]));
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(
            file_module_path("crates/rnb-store/src/shard.rs"),
            vec!["shard".to_string()]
        );
        assert_eq!(
            file_module_path("crates/rnb-core/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(
            file_module_path("crates/rnb-store/src/bin/rnb-stored.rs"),
            Vec::<String>::new()
        );
        assert_eq!(
            file_module_path("crates/rnb-x/src/a/b.rs"),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn signatures_with_impl_trait_do_not_confuse_scopes() {
        let fns = scan(
            "fn maker() -> impl Fn(usize) -> bool { |_| true }\n\
             fn after() {}\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "maker");
        assert_eq!(fns[1].name, "after");
        assert_eq!(fns[1].self_ty, None);
    }

    #[test]
    fn bodies_span_braces_and_tests_are_marked() {
        let src = "fn live() { inner(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let fns = scan(src);
        assert_eq!(fns.len(), 2);
        let (b0, b1) = fns[0].body.expect("live body");
        assert_eq!(&src[b0..b1], "{ inner(); }");
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let fns = scan("struct S { cb: fn(u8) -> u8 }\nfn real() {}\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }
}
