//! The multi-get hole, analytically and by simulation — and how RnB
//! closes it compared with adding servers or full-system replication.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use rnb_analysis::{urn, CostModel};
use rnb_core::{Bundler, FullSystemReplication, RnbConfig};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::{EgoRequests, RequestStream};

fn main() {
    // 1. The hole, in closed form (Fig 2): doubling a 16-server cluster.
    println!("doubling 16 servers, analytic TPRPS scaling factor (ideal = 2.0):");
    for m in [1usize, 10, 50, 100] {
        println!(
            "  {m:>3}-item requests: {:.3}",
            urn::doubling_scaling_factor(16, m)
        );
    }

    // 2. The hole, simulated with calibrated throughput (Fig 3).
    let graph = rnb_graph::SLASHDOT.scaled_down(10).generate(11);
    let model = CostModel::PAPER_ERA;
    let throughput = |servers: usize, replication: usize| {
        let cfg = ExperimentConfig::new(SimConfig::basic(servers, replication), 0, 1500);
        let mut stream = EgoRequests::new(&graph, 3);
        let m = run_experiment(&cfg, graph.num_nodes(), &mut stream);
        model.cluster_throughput(&m.txn_size_hist, m.requests, servers)
    };
    let t1 = throughput(1, 1);
    println!("\nsimulated relative throughput (no replication, Slashdot-like requests):");
    for n in [1usize, 2, 4, 8, 16] {
        println!(
            "  {n:>2} servers: {:.2}x (ideal {n}x)",
            throughput(n, 1) / t1
        );
    }

    // 3. Same hardware, add memory instead: RnB on 16 servers.
    println!("\n16 servers with RnB replication instead of more servers:");
    let t16_1 = throughput(16, 1);
    for k in [2usize, 3, 4] {
        println!(
            "  {k} replicas: {:.2}x the 16-server baseline",
            throughput(16, k) / t16_1
        );
    }

    // 4. Full-system replication (§II-C, the industry baseline): 4
    //    complete copies of the 16-server system = 64 servers. Capacity
    //    4x, but the TPR per request never improves. RnB gets its gain
    //    on the original 16 servers with memory alone.
    let fsr = FullSystemReplication::new(64, 4, 0);
    let rnb = Bundler::from_config(&RnbConfig::new(16, 4));
    let mut stream = EgoRequests::new(&graph, 5);
    let (mut fsr_tpr, mut rnb_tpr) = (0usize, 0usize);
    let trials = 500;
    for i in 0..trials {
        let req = stream.next_request();
        fsr_tpr += fsr.plan(&req, i as u64).tpr();
        rnb_tpr += rnb.plan(&req).tpr();
    }
    println!(
        "\nmean TPR: full-system replication (4x16 servers) {:.2} vs RnB (16 servers, 4x mem) {:.2}",
        fsr_tpr as f64 / trials as f64,
        rnb_tpr as f64 / trials as f64
    );
}
