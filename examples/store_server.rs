//! Run the memcached-analog store over TCP: start a server, talk the text
//! protocol with the bundled client, and take a miniature Fig 13
//! measurement.
//!
//! ```text
//! cargo run --release --example store_server
//! ```

use rnb_store::{loadgen, LoadSpec, Store, StoreClient, StoreServer};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let server = StoreServer::start(Arc::new(Store::new(32 << 20)))?;
    println!("store server listening on {}", server.addr());

    // Talk the memcached text protocol.
    let mut client = StoreClient::connect(server.addr())?;
    println!("server version: {}", client.version()?);
    client.set(b"user:42:status", b"shipping RnB", 0)?;
    let got = client.get_multi(&[b"user:42:status", b"user:43:status"])?;
    println!(
        "multi-get: user42 = {:?}, user43 = {:?}",
        got[0]
            .as_ref()
            .map(|(v, _)| String::from_utf8_lossy(v).into_owned()),
        got[1]
    );

    // Miniature Fig 13: items/sec at two transaction sizes.
    loadgen::populate(server.addr(), 2000, 10)?;
    for txn_size in [1usize, 32] {
        let spec = LoadSpec {
            clients: 1,
            txn_size,
            keyspace: 2000,
            value_len: 10,
            set_every_items: 1000,
            duration: Duration::from_millis(500),
        };
        let report = loadgen::run_load(server.addr(), &spec)?;
        println!(
            "txn_size {txn_size:>3}: {:>9.0} items/s  ({:>8.0} txns/s)",
            report.items_per_sec(),
            report.txns_per_sec()
        );
    }

    let stats = client.stats()?;
    println!(
        "server stats: {} gets, {} hits, {} sets",
        stats["cmd_get"], stats["get_hits"], stats["cmd_set"]
    );
    Ok(())
}
