//! The full §IV proof-of-concept as a runnable demo: a fleet of real
//! store servers on loopback TCP, driven by the deployable RnB client —
//! replicated writes, bundled multi-gets, an atomic counter, and the
//! transaction savings printed at the end.
//!
//! ```text
//! cargo run --release --example deployed_cluster
//! ```

use rnb_client::{RnbClient, RnbClientConfig};
use rnb_store::{Store, StoreServer};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // 1. Boot an 8-server fleet (each would be `rnb-stored` in production).
    let servers: Vec<StoreServer> = (0..8)
        .map(|_| StoreServer::start(Arc::new(Store::new(16 << 20))))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    println!("fleet: {} store servers on loopback", servers.len());

    // 2. Connect two independent clients — RnB (4 replicas) and a plain
    //    memcached-style client (1 copy) — to the same fleet.
    let mut rnb = RnbClient::connect(&addrs, RnbClientConfig::new(4))?;
    let mut plain = RnbClient::connect(&addrs, RnbClientConfig::new(1))?;

    // 3. Load a dataset through both (RnB writes 4 copies).
    for item in 0..2000u64 {
        let value = format!("status-of-user-{item}");
        rnb.set(item, value.as_bytes())?;
        plain.set(item, value.as_bytes())?;
    }
    println!("loaded 2000 items (RnB stores 4 replicas each)");

    // 4. Serve 100 social-feed style requests of 30 items through each.
    for r in 0..100u64 {
        let request: Vec<u64> = (0..30).map(|i| (r * 61 + i * 37) % 2000).collect();
        let a = rnb.multi_get(&request)?;
        let b = plain.multi_get(&request)?;
        assert!(a.iter().all(Option::is_some));
        assert_eq!(a, b, "both deployments must return identical data");
    }
    println!(
        "served 100 x 30-item requests:\n  RnB   : {:.2} transactions/request\n  plain : {:.2} transactions/request",
        rnb.stats().tpr(),
        plain.stats().tpr()
    );

    // 5. Atomic operations (§IV): a counter updated through the
    //    invalidate + CAS scheme.
    rnb.set(9999, b"0")?;
    for _ in 0..10 {
        rnb.atomic_update(9999, |bytes| {
            let n: u64 = std::str::from_utf8(bytes).unwrap().parse().unwrap();
            (n + 1).to_string().into_bytes()
        })?;
    }
    let counter = rnb.multi_get(&[9999])?[0].clone().unwrap();
    println!(
        "atomic counter after 10 updates: {}",
        String::from_utf8_lossy(&counter)
    );

    Ok(())
}
