//! Social-feed scenario: the paper's headline experiment end to end — a
//! social network, ego requests ("fetch all my friends' statuses"), and
//! the TPR effect of replication, run on the cluster simulator.
//!
//! ```text
//! cargo run --release --example social_feed
//! ```

use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::EgoRequests;

fn main() {
    // A scaled-down Slashdot-like network (same degree distribution).
    let spec = rnb_graph::SLASHDOT.scaled_down(10);
    let graph = spec.generate(42);
    println!(
        "graph: {} users, {} friendships, mean degree {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_out_degree()
    );
    println!("cluster: 16 servers, unlimited replica memory (basic RnB)\n");

    println!("{:>8}  {:>8}  {:>12}", "replicas", "TPR", "vs 1 replica");
    let mut base = None;
    for replication in 1..=5usize {
        let cfg = ExperimentConfig::new(SimConfig::basic(16, replication), 0, 2000);
        let mut stream = EgoRequests::new(&graph, 7);
        let metrics = run_experiment(&cfg, graph.num_nodes(), &mut stream);
        let tpr = metrics.tpr();
        let base_tpr = *base.get_or_insert(tpr);
        println!(
            "{replication:>8}  {tpr:>8.3}  {:>11.1}%",
            (1.0 - tpr / base_tpr) * 100.0
        );
    }

    println!("\nwith a limited memory budget (2.5x data size) and all enhancements:");
    let cfg = ExperimentConfig::new(SimConfig::enhanced(16, 4, 2.5), 10_000, 2000);
    let mut stream = EgoRequests::new(&graph, 7);
    let metrics = run_experiment(&cfg, graph.num_nodes(), &mut stream);
    println!(
        "  TPR {:.3} | miss rate {:.2}% | hitchhiker hits {} | round-2 txns {}",
        metrics.tpr(),
        metrics.miss_rate() * 100.0,
        metrics.hitchhiker_hits,
        metrics.round2_txns
    );
}
