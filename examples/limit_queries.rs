//! LIMIT queries (§III-F): "fetch me at least X items out of the
//! following list" — how partial results multiply RnB's savings.
//!
//! ```text
//! cargo run --release --example limit_queries
//! ```

use rnb_analysis::montecarlo::{average_tpr, McConfig};

fn main() {
    let servers = 16;
    let request_size = 50;

    println!("Monte-Carlo TPR, {servers} servers, {request_size}-item requests\n");
    println!(
        "{:>9}  {:>6}  {:>6}  {:>6}  {:>6}",
        "replicas", "100%", "95%", "90%", "50%"
    );
    for replication in 1..=5usize {
        let tpr = |fraction: f64| {
            average_tpr(&McConfig {
                servers,
                replication,
                request_size,
                fetch_fraction: fraction,
                trials: 800,
                seed: 1234 + replication as u64,
            })
        };
        println!(
            "{replication:>9}  {:>6.2}  {:>6.2}  {:>6.2}  {:>6.2}",
            tpr(1.0),
            tpr(0.95),
            tpr(0.90),
            tpr(0.50)
        );
    }

    println!();
    println!(
        "reading guide: moving right (weaker completeness) or down (more replicas)\n\
         cuts transactions; the combination is multiplicative — the paper reaches\n\
         ~30% of baseline TPR with 5 replicas."
    );
}
