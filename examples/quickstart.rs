//! Quickstart: plan a multi-get with RnB and see the transaction savings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rnb_core::{Bundler, PlacementStrategy, RnbConfig};

fn main() {
    // A 16-server deployment declaring 4 replicas per item.
    let config = RnbConfig::new(16, 4);
    let rnb = Bundler::from_config(&config);

    // The memcached status quo: one copy per item, consistent hashing.
    let baseline = Bundler::new(PlacementStrategy::no_replication(16, config.seed));

    // A user request: 40 items (e.g. the statuses of 40 friends).
    let request: Vec<u64> = (0..40).map(|i| i * 7919).collect();

    let base_plan = baseline.plan(&request);
    let rnb_plan = rnb.plan(&request);

    println!("request: {} items over 16 servers", request.len());
    println!("memcached (1 copy):  {} transactions", base_plan.tpr());
    println!("RnB (4 replicas):    {} transactions", rnb_plan.tpr());
    println!();
    println!("RnB transactions:");
    for t in &rnb_plan.transactions {
        println!("  server {:>2} <- {} items", t.server, t.items.len());
    }

    // A LIMIT request: any 30 of the 40 items suffice (§III-F).
    let limit_plan = rnb.plan_limit(&request, 30);
    println!();
    println!(
        "LIMIT 30/40:         {} transactions for {} items",
        limit_plan.tpr(),
        limit_plan.planned_items()
    );

    assert!(rnb_plan.tpr() <= base_plan.tpr());
    assert!(limit_plan.tpr() <= rnb_plan.tpr());
}
